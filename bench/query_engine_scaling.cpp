// Query-engine throughput vs. shard count, batch size and pruning mode.
//
// PR 1's bench (index_scaling) showed the inverted index beating the linear
// scan; this one shows the execution layer serving that index: the same
// synthetic tf-idf corpus as bench_index_scaling (eleven behavior classes
// with per-class Zipf permutations, log-normal weight magnitudes — Figure
// 1's power-law call counts) is served through exec::QueryEngine at every
// combination of shard count {1,2,4,8}, batch size {1,16,64} and
// PruningMode {exact, max-score}. Indexes are built with the parallel bulk
// ingest (add_batch) and therefore frozen — the serving-path layout every
// real archive ends up in.
//
// Two things keep the numbers honest on noisy hosts:
//  * The query stream is pinned: generated once, from its own fixed-seed
//    RNG, before any corpus material — every variant, every corpus size
//    and every run replays the same 64 queries.
//  * speedup_vs_scalar is measured PAIRED: each timed repetition runs the
//    variant sweep and immediately the scalar baseline sweep (1 shard,
//    batch 1, exact, through the engine), and the reported speedup is the
//    median of per-rep ratios. Machine-speed drift between reps cancels
//    instead of polluting the ratio.
//
// Exact results are bit-identical across all configurations; max-score
// results carry the same documents in the same order with scores within
// 1e-9 (both checked below before any throughput number is trusted).
//
// The engine seeds each shard's pruning threshold from the running global
// top-k floor, so later shards inherit earlier shards' floor. The
// seeded-vs-independent section quantifies that with deterministic
// counters: the same queries are pushed through the shards sequentially
// once with the floor carried across shards and once with every shard
// pruning on its own, and the total work (posting entries visited plus
// forward-store re-scoring) must not grow — and the scored-doc count must
// shrink at scale.
//
// Usage: bench_query_engine_scaling [--docs N | N]
//   e.g. `bench_query_engine_scaling --docs 5000` as a CI smoke; the full
//   ladder is 10k/100k signatures.
// Writes machine-readable results to BENCH_query_engine.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/zipf.hpp"
#include "vsm/sparse_vector.hpp"

namespace {

using fmeter::exec::PruneStats;
using fmeter::exec::PruningMode;
using fmeter::exec::QueryEngine;
using fmeter::exec::QueryStats;
using fmeter::exec::ShardedIndex;

constexpr std::uint32_t kDimension = 3800;  // core-kernel function count, §2.1
constexpr std::size_t kNnz = 200;           // function samples per interval
constexpr std::size_t kTopK = 10;
constexpr std::size_t kClasses = 11;
constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::size_t kBatchSizes[] = {1, 16, 64};
/// Every (shards, batch, mode) cell must stay within this factor of the
/// scalar baseline — sharding is allowed to cost a little at batch 1 on a
/// starved host, but a real regression fails the bench (and CI).
constexpr double kSpeedupFloor = 0.9;

fmeter::vsm::SparseVector synthetic_signature(
    fmeter::util::Rng& rng, const fmeter::util::ZipfDistribution& zipf,
    const std::vector<std::uint32_t>& perm) {
  return fmeter::bench::synthetic_class_signature(rng, zipf, perm, kNnz);
}

/// One timed configuration, measured paired against the scalar baseline.
struct CellTiming {
  double qps = 0.0;       ///< median queries/sec over the reps
  double speedup = 0.0;   ///< median per-rep (baseline time / variant time)
  fmeter::bench::LatencyPercentiles latency_us;  ///< per-query, per-chunk
  QueryStats stats;       ///< counters from one untimed sweep
};

/// Runs the whole query set through `engine` in chunks of `batch`. When
/// `latency_us` is given, each chunk's wall time is recorded as
/// microseconds-per-query samples (one sample per chunk — the latency a
/// caller submitting that batch would see, amortized over its queries).
void sweep(const QueryEngine& engine,
           const std::vector<fmeter::vsm::SparseVector>& queries,
           std::size_t batch, PruningMode mode, QueryStats* stats,
           std::vector<double>* latency_us = nullptr) {
  const std::span<const fmeter::vsm::SparseVector> all(queries);
  for (std::size_t begin = 0; begin < all.size(); begin += batch) {
    const auto chunk = all.subspan(begin, std::min(batch, all.size() - begin));
    if (latency_us != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      (void)engine.run_batch(chunk, kTopK, fmeter::exec::Metric::kCosine, mode,
                             stats);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      latency_us->push_back(us / static_cast<double>(chunk.size()));
    } else {
      (void)engine.run_batch(chunk, kTopK, fmeter::exec::Metric::kCosine, mode,
                             stats);
    }
  }
}

/// Times `engine` at (batch, mode) with the scalar baseline interleaved:
/// every rep measures the variant sweep and immediately the baseline sweep
/// (1 shard, batch 1, exact), so the reported speedup is a ratio of two
/// back-to-back measurements, immune to slow drift in machine load.
CellTiming measure_cell(const QueryEngine& engine, const QueryEngine& baseline,
                        const std::vector<fmeter::vsm::SparseVector>& queries,
                        std::size_t batch, PruningMode mode, int reps) {
  using Clock = std::chrono::steady_clock;
  const auto seconds_of = [&](const QueryEngine& e, std::size_t b,
                              PruningMode m, std::vector<double>* latency) {
    const auto start = Clock::now();
    sweep(e, queries, b, m, nullptr, latency);
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  sweep(engine, queries, batch, mode, nullptr);       // warmup variant
  sweep(baseline, queries, 1, PruningMode::kExact, nullptr);  // warmup base
  std::vector<double> qps_samples, ratio_samples, latency_samples;
  qps_samples.reserve(static_cast<std::size_t>(reps));
  ratio_samples.reserve(static_cast<std::size_t>(reps));
  latency_samples.reserve(static_cast<std::size_t>(reps) *
                          (queries.size() / std::max<std::size_t>(batch, 1) + 1));
  for (int r = 0; r < reps; ++r) {
    const double variant = seconds_of(engine, batch, mode, &latency_samples);
    const double scalar = seconds_of(baseline, 1, PruningMode::kExact, nullptr);
    qps_samples.push_back(static_cast<double>(queries.size()) / variant);
    ratio_samples.push_back(scalar / variant);
  }
  CellTiming timing;
  timing.qps = fmeter::util::percentile(qps_samples, 50.0);
  timing.speedup = fmeter::util::percentile(ratio_samples, 50.0);
  timing.latency_us = fmeter::bench::percentiles_of(latency_samples);
  sweep(engine, queries, batch, mode, &timing.stats);  // untimed counters
  return timing;
}

/// Exact configurations must return bit-identical hits; pruned ones the
/// same documents in the same order with scores within 1e-9. Verify a
/// sample against the 1-shard scalar exact reference before trusting any
/// throughput number.
bool results_equivalent(const QueryEngine& reference, const QueryEngine& engine,
                        PruningMode mode,
                        const std::vector<fmeter::vsm::SparseVector>& queries) {
  const std::size_t sample = std::min<std::size_t>(4, queries.size());
  const auto batched = engine.run_batch({queries.data(), sample}, kTopK,
                                        fmeter::exec::Metric::kCosine, mode);
  for (std::size_t q = 0; q < sample; ++q) {
    const auto expected = reference.run(queries[q], kTopK);
    if (batched[q].size() != expected.size()) return false;
    for (std::size_t r = 0; r < expected.size(); ++r) {
      if (batched[q][r].doc != expected[r].doc) return false;
      if (mode == PruningMode::kExact
              ? batched[q][r].score != expected[r].score
              : std::abs(batched[q][r].score - expected[r].score) > 1e-9) {
        return false;
      }
    }
  }
  return true;
}

/// Pushes `queries` through every shard sequentially, once carrying the
/// top-k score floor across shards (what the engine's threshold seeding
/// does, made deterministic) and once with every shard pruning
/// independently. Returns the two counter sets.
struct SeedingComparison {
  PruneStats seeded;
  PruneStats independent;
  bool results_match = true;
};

SeedingComparison compare_seeding(
    const ShardedIndex& index,
    const std::vector<fmeter::vsm::SparseVector>& queries) {
  SeedingComparison cmp;
  fmeter::index::TopKScratch scratch;
  for (const auto& query : queries) {
    std::vector<fmeter::exec::IndexHit> seeded_hits, independent_hits;
    double floor = fmeter::index::InvertedIndex::kNoSeed;
    for (std::size_t s = 0; s < index.num_shards(); ++s) {
      auto hits = index.shard(s).top_k_pruned(
          query, kTopK, fmeter::exec::Metric::kCosine, &scratch, floor,
          &cmp.seeded);
      if (hits.size() == kTopK) floor = std::max(floor, hits.back().score);
      for (auto& hit : hits) {
        hit.doc = index.global_of(s, hit.doc);
        seeded_hits.push_back(hit);
      }
    }
    for (std::size_t s = 0; s < index.num_shards(); ++s) {
      auto hits = index.shard(s).top_k_pruned(
          query, kTopK, fmeter::exec::Metric::kCosine, &scratch,
          fmeter::index::InvertedIndex::kNoSeed, &cmp.independent);
      for (auto& hit : hits) {
        hit.doc = index.global_of(s, hit.doc);
        independent_hits.push_back(hit);
      }
    }
    // Both merges must produce the same global top-k.
    const auto merge = [](std::vector<fmeter::exec::IndexHit> hits) {
      std::sort(hits.begin(), hits.end(), fmeter::index::ranks_better);
      if (hits.size() > kTopK) hits.resize(kTopK);
      return hits;
    };
    const auto from_seeded = merge(std::move(seeded_hits));
    const auto from_independent = merge(std::move(independent_hits));
    if (from_seeded.size() != from_independent.size()) {
      cmp.results_match = false;
      continue;
    }
    for (std::size_t r = 0; r < from_seeded.size(); ++r) {
      if (from_seeded[r].doc != from_independent[r].doc ||
          std::abs(from_seeded[r].score - from_independent[r].score) > 1e-9) {
        cmp.results_match = false;
      }
    }
  }
  return cmp;
}

/// Total cost model of a pruned execution: posting entries walked plus
/// forward-store re-scoring work (docs scored × average doc nnz).
double pruned_work(const PruneStats& stats, const ShardedIndex& index) {
  const double avg_nnz =
      index.size() > 0 ? static_cast<double>(index.num_postings()) /
                             static_cast<double>(index.size())
                       : 0.0;
  return static_cast<double>(stats.postings_visited) +
         avg_nnz * static_cast<double>(stats.docs_scored);
}

std::size_t parse_docs(int argc, char** argv) {
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--docs") == 0 && arg + 1 < argc) {
      return std::strtoul(argv[arg + 1], nullptr, 10);
    }
  }
  // Positional form kept for existing CI invocations.
  if (argc > 1 && argv[1][0] != '-') {
    return std::strtoul(argv[1], nullptr, 10);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t parsed = parse_docs(argc, argv);
  const std::size_t max_corpus = parsed > 0 ? parsed : 100000;

  fmeter::bench::print_banner(
      "query_engine_scaling: sharded + batched + pruned execution vs. scalar",
      "§1/§2.2 — indexable signatures, served shard-parallel with max-score");

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads: %u\n\n", cores);

  // The query stream is its own RNG, drawn before anything else: corpus
  // growth or bench restructuring can never shift which queries run.
  fmeter::util::Rng query_rng(0xf33d5eed);
  const fmeter::util::ZipfDistribution zipf(kDimension, 1.1);
  const auto perms =
      fmeter::bench::class_permutations(query_rng, kClasses, kDimension);
  std::vector<fmeter::vsm::SparseVector> queries;
  for (std::size_t i = 0; i < 64; ++i) {
    queries.push_back(synthetic_signature(query_rng, zipf, perms[i % kClasses]));
  }

  fmeter::util::Rng corpus_rng(0x5ca1e);
  std::vector<std::size_t> corpus_sizes;
  for (const std::size_t size : {std::size_t{10000}, std::size_t{100000}}) {
    if (size <= max_corpus) corpus_sizes.push_back(size);
  }
  if (corpus_sizes.empty()) corpus_sizes.push_back(max_corpus);

  std::vector<fmeter::vsm::SparseVector> signatures;
  std::vector<fmeter::bench::ShapeCheck> checks;
  std::vector<fmeter::bench::JsonRow> json_rows;

  std::printf("%10s %7s %7s %8s %14s %9s %9s %7s\n", "corpus", "shards",
              "batch", "mode", "queries/s", "speedup", "dispatch", "spans");
  for (const std::size_t corpus : corpus_sizes) {
    while (signatures.size() < corpus) {
      signatures.push_back(synthetic_signature(
          corpus_rng, zipf, perms[signatures.size() % kClasses]));
    }
    const int reps = corpus >= 100000 ? 3 : 5;
    const std::span<const fmeter::vsm::SparseVector> corpus_span(
        signatures.data(), corpus);

    // Bulk-ingested (frozen) 1-shard index: the equivalence reference and
    // the scalar baseline every ratio is paired against.
    ShardedIndex reference_index(1);
    reference_index.add_batch(corpus_span);
    const QueryEngine reference(reference_index);

    double baseline_qps = 0.0;
    double best_parallel_qps = 0.0;
    double min_speedup = 1e300;
    bool all_equivalent = true;
    for (const std::size_t shards : kShardCounts) {
      ShardedIndex sharded(shards);
      if (shards > 1) sharded.add_batch(corpus_span);
      const ShardedIndex& index = shards == 1 ? reference_index : sharded;
      const QueryEngine engine(index);
      for (const auto mode : {PruningMode::kExact, PruningMode::kMaxScore}) {
        all_equivalent = all_equivalent &&
                         results_equivalent(reference, engine, mode, queries);
        const char* mode_name =
            mode == PruningMode::kExact ? "exact" : "pruned";
        for (const std::size_t batch : kBatchSizes) {
          const CellTiming cell =
              measure_cell(engine, reference, queries, batch, mode, reps);
          if (shards == 1 && batch == 1 && mode == PruningMode::kExact) {
            baseline_qps = cell.qps;
          }
          if (shards > 1 && batch > 1) {
            best_parallel_qps = std::max(best_parallel_qps, cell.qps);
          }
          min_speedup = std::min(min_speedup, cell.speedup);
          std::printf(
              "%10zu %7zu %7zu %8s %14.0f %8.2fx %9s %7llu\n", corpus, shards,
              batch, mode_name, cell.qps, cell.speedup,
              cell.stats.dispatch_pooled > 0 ? "pooled" : "inline",
              static_cast<unsigned long long>(cell.stats.spans_reserved));
          json_rows.push_back(
              {fmeter::bench::jnum("docs", static_cast<double>(corpus)),
               fmeter::bench::jnum("shards", static_cast<double>(shards)),
               fmeter::bench::jnum("batch", static_cast<double>(batch)),
               fmeter::bench::jnum("k", kTopK),
               fmeter::bench::jstr("mode", mode_name),
               fmeter::bench::jnum("us_per_query", 1e6 / cell.qps),
               fmeter::bench::jnum("us_p50", cell.latency_us.p50),
               fmeter::bench::jnum("us_p95", cell.latency_us.p95),
               fmeter::bench::jnum("us_p99", cell.latency_us.p99),
               fmeter::bench::jnum("queries_per_sec", cell.qps),
               fmeter::bench::jnum("speedup_vs_scalar", cell.speedup),
               fmeter::bench::jnum(
                   "dispatch_inline",
                   static_cast<double>(cell.stats.dispatch_inline)),
               fmeter::bench::jnum(
                   "dispatch_pooled",
                   static_cast<double>(cell.stats.dispatch_pooled)),
               fmeter::bench::jnum(
                   "spans_reserved",
                   static_cast<double>(cell.stats.spans_reserved)),
               fmeter::bench::jnum(
                   "tasks_executed",
                   static_cast<double>(cell.stats.tasks_executed))});
        }
      }

      // Threshold seeding: deterministic counter comparison on the 4-shard
      // layout (sequential shard order, so the floor hand-off is exactly
      // reproducible run to run). Reuses the ladder's 4-shard index.
      if (shards == 4) {
        const std::vector<fmeter::vsm::SparseVector> sample(
            queries.begin(),
            queries.begin() + std::min<std::size_t>(queries.size(), 16));
        const auto cmp = compare_seeding(index, sample);
        const double seeded_work = pruned_work(cmp.seeded, index);
        const double independent_work = pruned_work(cmp.independent, index);
        std::printf(
            "\nseeding at %zu docs, 4 shards: seeded scored %zu / visited "
            "%zu,\n  independent scored %zu / visited %zu  (work ratio "
            "%.3f)\n\n",
            corpus, cmp.seeded.docs_scored, cmp.seeded.postings_visited,
            cmp.independent.docs_scored, cmp.independent.postings_visited,
            seeded_work / independent_work);
        json_rows.push_back(
            {fmeter::bench::jnum("docs", static_cast<double>(corpus)),
             fmeter::bench::jnum("shards", 4.0),
             fmeter::bench::jstr("mode", "seeding_comparison"),
             fmeter::bench::jnum("seeded_docs_scored",
                                 static_cast<double>(cmp.seeded.docs_scored)),
             fmeter::bench::jnum(
                 "independent_docs_scored",
                 static_cast<double>(cmp.independent.docs_scored)),
             fmeter::bench::jnum(
                 "seeded_postings_visited",
                 static_cast<double>(cmp.seeded.postings_visited)),
             fmeter::bench::jnum(
                 "independent_postings_visited",
                 static_cast<double>(cmp.independent.postings_visited)),
             fmeter::bench::jnum("work_ratio",
                                 seeded_work / independent_work)});
        checks.push_back(
            {"seeded and independent pruning agree on results at " +
                 std::to_string(corpus),
             cmp.results_match});
        checks.push_back(
            {"threshold seeding does not increase pruned work at " +
                 std::to_string(corpus),
             seeded_work <= independent_work});
        if (corpus >= 100000) {
          checks.push_back(
              {"threshold seeding scores strictly fewer docs than "
               "independent pruning at " +
                   std::to_string(corpus),
               cmp.seeded.docs_scored < cmp.independent.docs_scored});
        }
      }
    }

    checks.push_back({"all shard/batch/mode configurations equivalent at " +
                          std::to_string(corpus) + " signatures",
                      all_equivalent});
    // The floor is enforced at the ladder's measured sizes only: CI smoke
    // runs (sanitizer builds, truncated --docs) distort per-cell ratios
    // enough to flake a hard gate, and bench_check.py re-enforces the floor
    // from the emitted JSON wherever the full ladder runs.
    if (corpus >= 10000) {
      checks.push_back(
          {"every (shards, batch, mode) cell within " +
               std::to_string(kSpeedupFloor) + "x of scalar at " +
               std::to_string(corpus) + " signatures (worst " +
               std::to_string(min_speedup) + "x)",
           min_speedup >= kSpeedupFloor});
    }
    if (corpus >= 100000 && cores >= 4) {
      checks.push_back(
          {"batched sharded >= 2x scalar single-shard at 100k signatures",
           best_parallel_qps >= 2.0 * baseline_qps});
    }
  }

  fmeter::bench::emit_json("BENCH_query_engine.json", "query_engine_scaling",
                           json_rows);
  std::printf("wrote BENCH_query_engine.json (%zu rows)\n", json_rows.size());
  return fmeter::bench::print_shape_checks(checks);
}
