// TaskPool: fixed worker count, futures carry results and exceptions,
// shutdown drains the queue, and concurrent submitters stay race-free
// (this binary is part of the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/task_pool.hpp"

namespace fmeter::exec {
namespace {

TEST(TaskPool, SubmitReturnsResultsThroughFutures) {
  TaskPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto text = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "done");
  EXPECT_EQ(pool.tasks_executed(), 2u);
}

TEST(TaskPool, ZeroRequestedThreadsClampsToOne) {
  TaskPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(TaskPool, ExceptionsLandInTheFutureNotThePool) {
  TaskPool pool(1);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker survives a throwing task and keeps serving.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
  EXPECT_EQ(pool.tasks_executed(), 2u);
}

TEST(TaskPool, ManyTasksAllExecuteExactlyOnce) {
  constexpr int kTasks = 500;
  std::atomic<int> counter{0};
  TaskPool pool(4);
  std::vector<std::future<void>> pending;
  pending.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pending.push_back(pool.submit(
        [&counter] { counter.fetch_add(1, std::memory_order_relaxed); }));
  }
  for (auto& future : pending) future.get();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(pool.tasks_executed(), static_cast<std::size_t>(kTasks));
}

TEST(TaskPool, ConcurrentSubmittersAreSafe) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 100;
  std::atomic<int> counter{0};
  TaskPool pool(3);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&pool, &counter] {
      std::vector<std::future<int>> pending;
      pending.reserve(kTasksEach);
      for (int i = 0; i < kTasksEach; ++i) {
        pending.push_back(pool.submit([&counter] {
          return counter.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& future : pending) (void)future.get();
    });
  }
  for (auto& submitter : submitters) submitter.join();
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST(TaskPool, DestructionDrainsAlreadySubmittedTasks) {
  constexpr int kTasks = 64;
  std::atomic<int> counter{0};
  std::vector<std::future<void>> pending;
  {
    TaskPool pool(2);
    pending.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      pending.push_back(pool.submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); }));
    }
  }  // join: every submitted future must resolve before the pool dies
  for (auto& future : pending) future.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(TaskPool, WorkerThreadsKnowTheirOwningPool) {
  TaskPool pool(2);
  TaskPool other(1);
  EXPECT_FALSE(pool.current_thread_is_worker());  // test thread is no worker
  EXPECT_TRUE(pool.submit([&pool] { return pool.current_thread_is_worker(); })
                  .get());
  // A worker of one pool is not a worker of another.
  EXPECT_FALSE(
      pool.submit([&other] { return other.current_thread_is_worker(); }).get());
}

TEST(TaskPool, SharedPoolIsAProcessWideSingleton) {
  TaskPool& first = TaskPool::shared();
  TaskPool& second = TaskPool::shared();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.size(), 1u);
  EXPECT_EQ(first.submit([] { return 3; }).get(), 3);
}

}  // namespace
}  // namespace fmeter::exec
