#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fmeter::ml {
namespace {

TEST(ConfusionCounts, AddRoutesCorrectly) {
  ConfusionCounts counts;
  counts.add(+1, +1);  // tp
  counts.add(+1, -1);  // fn
  counts.add(-1, +1);  // fp
  counts.add(-1, -1);  // tn
  EXPECT_EQ(counts.true_positive, 1u);
  EXPECT_EQ(counts.false_negative, 1u);
  EXPECT_EQ(counts.false_positive, 1u);
  EXPECT_EQ(counts.true_negative, 1u);
  EXPECT_EQ(counts.total(), 4u);
}

TEST(ConfusionCounts, MetricsHandComputed) {
  ConfusionCounts counts;
  counts.true_positive = 8;
  counts.false_positive = 2;
  counts.true_negative = 9;
  counts.false_negative = 1;
  EXPECT_DOUBLE_EQ(counts.accuracy(), 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(counts.precision(), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 8.0 / 9.0);
  const double p = 0.8;
  const double r = 8.0 / 9.0;
  EXPECT_DOUBLE_EQ(counts.f1(), 2 * p * r / (p + r));
}

TEST(ConfusionCounts, EmptyEdgeCases) {
  ConfusionCounts counts;
  EXPECT_EQ(counts.accuracy(), 0.0);
  EXPECT_EQ(counts.precision(), 1.0);  // vacuously precise
  EXPECT_EQ(counts.recall(), 1.0);
  EXPECT_EQ(counts.f1(), 1.0);
}

TEST(ClusterPurity, HandExample) {
  // Cluster 0: labels {1,1,2} -> 2 correct; cluster 1: {2,2} -> 2 correct.
  const std::vector<std::size_t> assignments = {0, 0, 0, 1, 1};
  const std::vector<int> labels = {1, 1, 2, 2, 2};
  EXPECT_DOUBLE_EQ(cluster_purity(assignments, labels), 4.0 / 5.0);
}

TEST(ClusterPurity, PerfectClustering) {
  const std::vector<std::size_t> assignments = {0, 0, 1, 1};
  const std::vector<int> labels = {7, 7, 9, 9};
  EXPECT_DOUBLE_EQ(cluster_purity(assignments, labels), 1.0);
}

TEST(ClusterPurity, OneClusterPerPointIsAlwaysPure) {
  // The paper's caveat: purity -> 1.0 as K -> n.
  const std::vector<std::size_t> assignments = {0, 1, 2, 3};
  const std::vector<int> labels = {1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(cluster_purity(assignments, labels), 1.0);
}

TEST(ClusterPurity, SingleClusterGivesMajorityFraction) {
  const std::vector<std::size_t> assignments = {0, 0, 0, 0};
  const std::vector<int> labels = {1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(cluster_purity(assignments, labels), 0.75);
}

TEST(ClusterPurity, EmptyIsZero) {
  EXPECT_EQ(cluster_purity({}, {}), 0.0);
}

TEST(ClusterPurity, SizeMismatchThrows) {
  const std::vector<std::size_t> assignments = {0};
  const std::vector<int> labels = {1, 2};
  EXPECT_THROW(cluster_purity(assignments, labels), std::invalid_argument);
}

TEST(Nmi, PerfectAgreementIsOne) {
  const std::vector<std::size_t> assignments = {0, 0, 1, 1, 2, 2};
  const std::vector<int> labels = {5, 5, 6, 6, 7, 7};
  EXPECT_NEAR(normalized_mutual_information(assignments, labels), 1.0, 1e-9);
}

TEST(Nmi, SingleClusterAgainstManyLabelsIsZero) {
  const std::vector<std::size_t> assignments = {0, 0, 0, 0};
  const std::vector<int> labels = {1, 2, 1, 2};
  EXPECT_NEAR(normalized_mutual_information(assignments, labels), 0.0, 1e-9);
}

TEST(Nmi, BetweenZeroAndOne) {
  const std::vector<std::size_t> assignments = {0, 0, 1, 1, 0, 1};
  const std::vector<int> labels = {1, 1, 1, 2, 2, 2};
  const double nmi = normalized_mutual_information(assignments, labels);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

TEST(RandIndex, PerfectAgreement) {
  const std::vector<std::size_t> assignments = {0, 0, 1, 1};
  const std::vector<int> labels = {3, 3, 4, 4};
  EXPECT_DOUBLE_EQ(rand_index(assignments, labels), 1.0);
}

TEST(RandIndex, HandExample) {
  // points: a=(c0,l1) b=(c0,l1) c=(c1,l1) d=(c1,l2)
  // pairs: ab agree(same,same)=1, ac (diff,same)=0, ad (diff,diff)=1,
  //        bc 0, bd 1, cd (same,diff)=0  => 3/6
  const std::vector<std::size_t> assignments = {0, 0, 1, 1};
  const std::vector<int> labels = {1, 1, 1, 2};
  EXPECT_DOUBLE_EQ(rand_index(assignments, labels), 0.5);
}

TEST(RandIndex, TrivialSizes) {
  EXPECT_DOUBLE_EQ(rand_index({}, {}), 1.0);
  const std::vector<std::size_t> one = {0};
  const std::vector<int> one_label = {5};
  EXPECT_DOUBLE_EQ(rand_index(one, one_label), 1.0);
}

}  // namespace
}  // namespace fmeter::ml
