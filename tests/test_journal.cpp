// Write-ahead journal battery (io/journal.hpp): append/replay round trips
// under both sync policies, every torn-tail shape recovery must truncate
// (header cut inside the length prefix, payload cut, checksum flip in
// header vs payload, trailing garbage), repair durability, and the
// bad-magic refusal that protects committed data from silent discard.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "io/env.hpp"
#include "io/journal.hpp"

namespace fmeter::io::journal {
namespace {

std::vector<std::byte> payload_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

std::vector<std::string> replay_strings(Env& env, const std::string& path,
                                        ReplayResult* result = nullptr,
                                        bool repair = false) {
  std::vector<std::string> records;
  const ReplayResult r = replay(
      env, path,
      [&records](std::span<const std::byte> payload) {
        records.emplace_back(reinterpret_cast<const char*>(payload.data()),
                             payload.size());
      },
      repair);
  if (result != nullptr) *result = r;
  return records;
}

/// A journal with three committed records, returned as raw bytes so each
/// corruption test can damage its own copy.
std::string three_record_journal(InMemoryEnv& env) {
  env.create_dir("d");
  Writer writer(env, "d/j.wal", SyncPolicy::kEachRecord);
  writer.append(payload_of("first record"));
  writer.append(payload_of(""));  // empty payloads are legal records
  writer.append(payload_of("third, somewhat longer record payload"));
  writer.close();
  env.sync_dir("d");
  return env.read_file("d/j.wal");
}

void write_raw(Env& env, const std::string& path, const std::string& bytes) {
  auto file = env.new_writable_file(path, /*truncate=*/true);
  file->append(std::string_view(bytes));
  file->sync();
  file->close();
}

TEST(Journal, RoundTripAndWriterAccounting) {
  InMemoryEnv env;
  env.create_dir("d");
  Writer writer(env, "d/j.wal", SyncPolicy::kEachRecord);
  EXPECT_EQ(writer.bytes(), kHeaderBytes);
  writer.append(payload_of("alpha"));
  writer.append(payload_of("beta"));
  EXPECT_EQ(writer.records_appended(), 2u);
  EXPECT_EQ(writer.bytes(), kHeaderBytes + 2 * kRecordHeaderBytes + 9);
  writer.close();

  ReplayResult result;
  const auto records = replay_strings(env, "d/j.wal", &result);
  EXPECT_EQ(records, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(result.records, 2u);
  EXPECT_EQ(result.payload_bytes, 9u);
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.valid_bytes, env.file_size("d/j.wal"));
}

TEST(Journal, ReopenExtendsExistingJournal) {
  InMemoryEnv env;
  env.create_dir("d");
  {
    Writer writer(env, "d/j.wal", SyncPolicy::kEachRecord);
    writer.append(payload_of("one"));
  }
  {
    Writer writer(env, "d/j.wal", SyncPolicy::kEachRecord);
    EXPECT_EQ(writer.records_appended(), 0u);  // per-writer, not lifetime
    writer.append(payload_of("two"));
  }
  EXPECT_EQ(replay_strings(env, "d/j.wal"),
            (std::vector<std::string>{"one", "two"}));
}

TEST(Journal, SyncPolicyDecidesTheCommitPoint) {
  // kEachRecord: the record survives a strict crash as soon as append()
  // returns. kNone: it survives only once sync() was called.
  for (const bool each_record : {true, false}) {
    InMemoryEnv env;
    env.create_dir("d");
    Writer writer(env, "d/j.wal",
                  each_record ? SyncPolicy::kEachRecord : SyncPolicy::kNone);
    env.sync_dir("d");
    writer.append(payload_of("committed?"));
    env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
    const auto records = replay_strings(env, "d/j.wal");
    if (each_record) {
      EXPECT_EQ(records, (std::vector<std::string>{"committed?"}));
    } else {
      EXPECT_TRUE(records.empty());
    }
  }

  // The kNone writer's explicit sync() is its commit point.
  InMemoryEnv env;
  env.create_dir("d");
  Writer writer(env, "d/j.wal", SyncPolicy::kNone);
  env.sync_dir("d");
  writer.append(payload_of("now committed"));
  writer.sync();
  writer.append(payload_of("still volatile"));
  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  EXPECT_EQ(replay_strings(env, "d/j.wal"),
            (std::vector<std::string>{"now committed"}));
}

TEST(Journal, MissingAndEmptyFilesReplayAsEmpty) {
  InMemoryEnv env;
  env.create_dir("d");
  ReplayResult result;
  EXPECT_TRUE(replay_strings(env, "d/absent.wal", &result).empty());
  EXPECT_EQ(result.records, 0u);
  EXPECT_FALSE(result.truncated_tail);

  // Shorter than the magic: a crash between creation and first sync.
  write_raw(env, "d/short.wal", "FME");
  EXPECT_TRUE(replay_strings(env, "d/short.wal", &result).empty());
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_EQ(result.dropped_bytes, 3u);
  EXPECT_EQ(result.truncate_reason, "short magic header");
}

TEST(Journal, EveryTornTailShapeTruncatesToTheLastGoodRecord) {
  InMemoryEnv pristine;
  const std::string good = three_record_journal(pristine);

  // Offsets of the third record's framing, derived from the first two.
  const std::size_t second_end =
      kHeaderBytes + (kRecordHeaderBytes + 12) + (kRecordHeaderBytes + 0);
  struct Case {
    std::string name;
    std::string bytes;
    std::string reason;
  };
  std::vector<Case> cases;

  // Truncation *inside* the third record's length prefix.
  cases.push_back({"cut inside length prefix",
                   good.substr(0, second_end + 2), "torn record header"});
  // Truncation inside the checksum field (still the record header).
  cases.push_back({"cut inside checksum",
                   good.substr(0, second_end + 6), "torn record header"});
  // Truncation inside the payload.
  cases.push_back({"cut inside payload", good.substr(0, good.size() - 5),
                   "torn record payload"});
  // Flipped byte in the record *header* (length prefix): reframes to a
  // bogus length, caught as torn payload or implausible length.
  {
    std::string flipped = good;
    flipped[second_end] = static_cast<char>(flipped[second_end] ^ 0x40);
    cases.push_back({"flip in length prefix", flipped, ""});
  }
  // Flipped byte in the stored checksum.
  {
    std::string flipped = good;
    flipped[second_end + 5] =
        static_cast<char>(flipped[second_end + 5] ^ 0x01);
    cases.push_back(
        {"flip in stored checksum", flipped, "record checksum mismatch"});
  }
  // Flipped byte in the payload.
  {
    std::string flipped = good;
    flipped[second_end + kRecordHeaderBytes + 3] =
        static_cast<char>(flipped[second_end + kRecordHeaderBytes + 3] ^ 0x10);
    cases.push_back(
        {"flip in payload", flipped, "record checksum mismatch"});
  }
  // Garbage appended after a valid record boundary — too short to frame a
  // record, so it reads as a torn header.
  cases.push_back(
      {"trailing garbage", good.substr(0, second_end) + "garbage!", ""});
  // An implausible length prefix (all 0xff).
  {
    std::string huge = good.substr(0, second_end);
    huge += std::string(kRecordHeaderBytes, '\xff');
    cases.push_back({"implausible length", huge, "implausible record length"});
  }

  for (const Case& c : cases) {
    InMemoryEnv env;
    env.create_dir("d");
    write_raw(env, "d/j.wal", c.bytes);
    env.sync_dir("d");  // the crash below must not also drop the name

    ReplayResult result;
    const auto records =
        replay_strings(env, "d/j.wal", &result, /*repair=*/true);
    ASSERT_EQ(records.size(), 2u) << c.name;
    EXPECT_EQ(records[0], "first record") << c.name;
    EXPECT_EQ(records[1], "") << c.name;
    EXPECT_TRUE(result.truncated_tail) << c.name;
    EXPECT_EQ(result.valid_bytes, second_end) << c.name;
    if (!c.reason.empty()) {
      EXPECT_EQ(result.truncate_reason, c.reason) << c.name;
    } else {
      EXPECT_FALSE(result.truncate_reason.empty()) << c.name;
    }

    // Repair chopped the tail and made the truncation durable: a strict
    // crash, a re-replay and a fresh append all see a valid journal.
    env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
    EXPECT_EQ(env.file_size("d/j.wal"), second_end) << c.name;
    Writer writer(env, "d/j.wal", SyncPolicy::kEachRecord);
    writer.append(payload_of("appended after repair"));
    writer.close();
    EXPECT_EQ(replay_strings(env, "d/j.wal"),
              (std::vector<std::string>{"first record", "",
                                        "appended after repair"}))
        << c.name;
  }
}

TEST(Journal, BadMagicOnACompleteHeaderThrows) {
  // A synced header that is not ours is corruption or a foreign file —
  // refusing loudly beats silently discarding committed records.
  InMemoryEnv env;
  env.create_dir("d");
  write_raw(env, "d/j.wal", "NOTAWAL!and then some record bytes");
  EXPECT_THROW(replay_strings(env, "d/j.wal"), JournalError);
  EXPECT_THROW(scan(env, "d/j.wal"), JournalError);
}

TEST(Journal, ScanIsReadOnly) {
  InMemoryEnv pristine;
  const std::string good = three_record_journal(pristine);
  InMemoryEnv env;
  env.create_dir("d");
  const std::string torn = good.substr(0, good.size() - 5);
  write_raw(env, "d/j.wal", torn);

  const ReplayResult result = scan(env, "d/j.wal");
  EXPECT_EQ(result.records, 2u);
  EXPECT_TRUE(result.truncated_tail);
  // scan never repairs: the torn bytes are still there.
  EXPECT_EQ(env.read_file("d/j.wal"), torn);
}

TEST(Journal, OversizedRecordRejectedAtAppend) {
  InMemoryEnv env;
  env.create_dir("d");
  Writer writer(env, "d/j.wal", SyncPolicy::kNone);
  std::vector<std::byte> huge(static_cast<std::size_t>(kMaxRecordBytes) + 1);
  EXPECT_THROW(writer.append(huge), JournalError);
  // The reject happened before any bytes were written.
  EXPECT_EQ(writer.bytes(), kHeaderBytes);
}

TEST(Journal, ApplyExceptionPropagatesUnwrapped) {
  InMemoryEnv env;
  three_record_journal(env);
  EXPECT_THROW(
      replay(
          env, "d/j.wal",
          [](std::span<const std::byte>) {
            throw std::runtime_error("apply failed");
          },
          false),
      std::runtime_error);
}

}  // namespace
}  // namespace fmeter::io::journal
