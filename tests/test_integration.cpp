// End-to-end integration tests: the paper's full pipeline on reduced scales.
#include <gtest/gtest.h>

#include "cpu_time.hpp"
#include "fmeter/fmeter.hpp"

namespace fmeter {
namespace {

core::SystemConfig test_system() {
  core::SystemConfig config;
  config.kernel.num_cpus = 2;
  return config;
}

core::SignatureGenConfig small_gen(std::size_t signatures = 30) {
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = signatures;
  gen.units_per_interval = 6;
  gen.interval_jitter = 0.4;
  return gen;
}

TEST(Integration, CollectedSignaturesCarryWorkloadLabels) {
  core::MonitoredSystem system(test_system());
  const auto corpus = core::collect_signatures(
      system, workloads::WorkloadKind::kDbench, small_gen(10));
  ASSERT_EQ(corpus.size(), 10u);
  for (const auto& doc : corpus.documents()) {
    EXPECT_EQ(doc.label, "dbench");
    EXPECT_GT(doc.total(), 0u);
    EXPECT_DOUBLE_EQ(doc.duration_s, 10.0);
  }
}

TEST(Integration, TracerRestoredAfterCollection) {
  core::MonitoredSystem system(test_system());
  system.select_tracer(core::TracerKind::kVanilla);
  core::collect_signatures(system, workloads::WorkloadKind::kScp, small_gen(3));
  EXPECT_EQ(system.active_tracer(), core::TracerKind::kVanilla);
}

TEST(Integration, SameClassSignaturesMoreSimilarThanCrossClass) {
  core::MonitoredSystem system(test_system());
  const workloads::WorkloadKind kinds[] = {workloads::WorkloadKind::kScp,
                                           workloads::WorkloadKind::kKcompile};
  const auto corpus = core::collect_signatures(system, kinds, small_gen(20));
  const auto signatures = core::signatures_from(corpus);
  const auto scp = corpus.indices_with_label("scp");
  const auto kcompile = corpus.indices_with_label("kcompile");
  const double same =
      vsm::cosine_similarity(signatures[scp[0]], signatures[scp[1]]);
  const double cross =
      vsm::cosine_similarity(signatures[scp[0]], signatures[kcompile[0]]);
  EXPECT_GT(same, cross + 0.3);
}

// The paper's normalization claim (§3/§5): the collection interval length is
// a daemon configuration parameter that does NOT majorly influence the
// signatures, because tf normalizes by document length. Individual intervals
// still carry phase noise, so the systematic effect is what must vanish:
// the *centroid* of short-interval signatures must stay close to the
// centroid of long-interval signatures of the same behavior, and far from a
// different behavior's centroid.
TEST(Integration, SignaturesInsensitiveToIntervalLength) {
  core::MonitoredSystem system(test_system());
  auto gen_short = small_gen(16);
  gen_short.units_per_interval = 5;
  auto gen_long = small_gen(16);
  gen_long.units_per_interval = 20;

  auto corpus = core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, gen_short);
  corpus.append(core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, gen_long));
  corpus.append(core::collect_signatures(
      system, workloads::WorkloadKind::kKcompile, gen_short));
  const auto signatures = core::signatures_from(corpus);

  auto centroid = [&](std::size_t begin, std::size_t end) {
    vsm::SparseVector sum;
    for (std::size_t i = begin; i < end; ++i) sum = sum.plus(signatures[i]);
    return sum.scaled(1.0 / static_cast<double>(end - begin));
  };
  const auto short_centroid = centroid(0, 16);
  const auto long_centroid = centroid(16, 32);
  const auto other_class = centroid(32, 48);

  const double same_behavior =
      vsm::cosine_similarity(short_centroid, long_centroid);
  const double different_behavior =
      vsm::cosine_similarity(short_centroid, other_class);
  EXPECT_GT(same_behavior, 0.7);
  EXPECT_GT(same_behavior, different_behavior + 0.3);
}

TEST(Integration, SvmDistinguishesWorkloadsEndToEnd) {
  core::MonitoredSystem system(test_system());
  const workloads::WorkloadKind kinds[] = {workloads::WorkloadKind::kScp,
                                           workloads::WorkloadKind::kDbench};
  const auto corpus = core::collect_signatures(system, kinds, small_gen(24));
  const auto signatures = core::signatures_from(corpus);
  const std::vector<std::string> pos = {"scp"};
  const std::vector<std::string> neg = {"dbench"};
  const auto positives = core::binary_dataset(corpus, signatures, pos, {});
  const auto negatives = core::binary_dataset(corpus, signatures, {}, neg);

  ml::CrossValidationConfig cv;
  cv.num_folds = 4;
  cv.c_grid = {1.0, 10.0};
  const auto result = ml::cross_validate_svm(positives, negatives, cv);
  EXPECT_GE(result.mean_accuracy(), 0.95);
  EXPECT_GT(result.mean_accuracy(), result.baseline_accuracy);
}

TEST(Integration, KMeansClustersWorkloadsEndToEnd) {
  core::MonitoredSystem system(test_system());
  const workloads::WorkloadKind kinds[] = {workloads::WorkloadKind::kScp,
                                           workloads::WorkloadKind::kKcompile};
  const auto corpus = core::collect_signatures(system, kinds, small_gen(20));
  const auto signatures = core::signatures_from(corpus);

  std::vector<int> labels;
  for (const auto& doc : corpus.documents()) {
    labels.push_back(doc.label == "scp" ? 0 : 1);
  }
  ml::KMeansConfig config;
  config.k = 2;
  const auto result = ml::KMeans(config).fit(signatures);
  EXPECT_GE(ml::cluster_purity(result.assignments, labels), 0.9);
}

TEST(Integration, DatabaseRoundTripClassification) {
  core::MonitoredSystem system(test_system());
  const workloads::WorkloadKind kinds[] = {workloads::WorkloadKind::kDbench,
                                           workloads::WorkloadKind::kApachebench};
  const auto corpus = core::collect_signatures(system, kinds, small_gen(15));
  vsm::TfIdfModel model;
  const auto signatures = core::signatures_from(corpus, {}, &model);

  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i], corpus[i].label);
  }

  // Fresh, unseen signatures classify to their own class.
  auto probe_gen = small_gen(3);
  probe_gen.seed ^= 0x1234;
  const auto probes = core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, probe_gen);
  for (const auto& doc : probes.documents()) {
    EXPECT_EQ(db.classify_by_syndrome(model.transform(doc)), "apachebench");
  }
}

TEST(Integration, TracerOverheadOrdering) {
  // vanilla <= fmeter << ftrace on identical instruction streams.
  core::MonitoredSystem system(test_system());
  auto& cpu = system.kernel().cpu(0);
  auto workload = workloads::make_workload(workloads::WorkloadKind::kDbench,
                                           system.ops());

  auto time_units = [&](core::TracerKind kind, int units) {
    system.select_tracer(kind);
    for (int u = 0; u < units / 4; ++u) workload->run_unit(cpu);  // warm
    const double start = testing::cpu_seconds();
    for (int u = 0; u < units; ++u) workload->run_unit(cpu);
    return testing::cpu_seconds() - start;
  };

  const int units = 60;
  const double vanilla = time_units(core::TracerKind::kVanilla, units);
  const double fmeter = time_units(core::TracerKind::kFmeter, units);
  const double ftrace = time_units(core::TracerKind::kFtrace, units);
  // Generous bounds: timing on shared CI hardware is noisy.
  EXPECT_LT(vanilla, ftrace);
  EXPECT_LT(fmeter, ftrace);
}

TEST(Integration, FmeterCountsSurviveWhereFtraceOverruns) {
  // Sustained load: the Ftrace ring loses events, Fmeter's counters cannot.
  core::SystemConfig config = test_system();
  config.ftrace.buffer_events_per_cpu = 512;  // deliberately tiny
  core::MonitoredSystem system(config);
  auto& cpu = system.kernel().cpu(0);
  auto workload = workloads::make_workload(workloads::WorkloadKind::kDbench,
                                           system.ops());

  system.select_tracer(core::TracerKind::kFtrace);
  for (int u = 0; u < 20; ++u) workload->run_unit(cpu);
  EXPECT_GT(system.ftrace().overruns(), 0u);

  system.select_tracer(core::TracerKind::kFmeter);
  const auto snap_before = system.fmeter().snapshot();
  const auto dispatched_before = cpu.calls_dispatched();
  for (int u = 0; u < 20; ++u) workload->run_unit(cpu);
  // Every single dispatched call was counted — no "events flying under the
  // radar" (paper §1), unlike the overrunning ring buffer above.
  EXPECT_EQ(system.fmeter().snapshot().total() - snap_before.total(),
            cpu.calls_dispatched() - dispatched_before);
}

TEST(Integration, ModuleOpacityEndToEnd) {
  // Driver-variant signatures register only core-kernel terms, and the
  // variants remain distinguishable through that channel alone (Table 5).
  core::MonitoredSystem system(test_system());
  const workloads::WorkloadKind kinds[] = {
      workloads::WorkloadKind::kNetperf151,
      workloads::WorkloadKind::kNetperf151NoLro};
  const auto corpus = core::collect_signatures(system, kinds, small_gen(15));
  const auto signatures = core::signatures_from(corpus);

  const auto with_lro = corpus.indices_with_label("myri10ge-1.5.1");
  const auto no_lro = corpus.indices_with_label("myri10ge-1.5.1-nolro");
  const double same = vsm::cosine_similarity(signatures[with_lro[0]],
                                             signatures[with_lro[1]]);
  const double cross = vsm::cosine_similarity(signatures[with_lro[0]],
                                              signatures[no_lro[0]]);
  EXPECT_GT(same, cross);
}

}  // namespace
}  // namespace fmeter
