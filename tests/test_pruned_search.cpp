// Property suite for the max-score pruned query path (PruningMode::kMaxScore).
//
// The pruned path's contract is deliberately weaker than the exact path's
// golden guarantee: it must return the *same document set in the same
// order* as the brute-force scan, with scores equal within 1e-9 — but not
// bit-identical, because pruning accumulates posting lists in impact order
// rather than term order. Everything here is seeded-RNG and wall-clock
// free: randomized corpora across metrics, shard counts {1, 2, 5} and
// k ∈ {0, 1, 10, size}; adversarial tie/duplicate/zero-weight corpora; a
// clustered corpus large enough to drive the candidate-mode switch; the
// incremental-add freshness of the per-term bounds; cross-shard threshold
// seeding; and the observability counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "exec/task_pool.hpp"
#include "fmeter/database.hpp"
#include "fmeter/retrieval.hpp"
#include "index/inverted_index.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

constexpr double kScoreTolerance = 1e-9;
constexpr std::size_t kShardCounts[] = {1, 2, 5};

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz,
                                bool allow_negative = false) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);  // may be 0 => empty vector
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto term =
        static_cast<vsm::SparseVector::Index>(rng.below(dimension));
    double value = rng.uniform(0.05, 1.0);
    if (allow_negative && rng.bernoulli(0.3)) value = -value;
    entries.emplace_back(term, value);
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

/// Same documents, same labels, same order; scores within tolerance.
void expect_hits_match(const std::vector<SearchHit>& pruned,
                       const std::vector<SearchHit>& golden,
                       const std::string& context) {
  ASSERT_EQ(pruned.size(), golden.size()) << context;
  for (std::size_t rank = 0; rank < golden.size(); ++rank) {
    EXPECT_EQ(pruned[rank].id, golden[rank].id) << context << " rank " << rank;
    EXPECT_EQ(pruned[rank].label, golden[rank].label)
        << context << " rank " << rank;
    EXPECT_NEAR(pruned[rank].score, golden[rank].score, kScoreTolerance)
        << context << " rank " << rank;
  }
}

void expect_pruned_equivalence(const SignatureDatabase& db,
                               const vsm::SparseVector& query, std::size_t k,
                               const std::string& context) {
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const auto golden = db.search(query, k, metric, ScanPolicy::kBruteForce);
    const auto pruned = db.search(query, k, metric, ScanPolicy::kIndexed,
                                  PruningMode::kMaxScore);
    expect_hits_match(
        pruned, golden,
        context + (metric == SimilarityMetric::kCosine ? " cosine" : " l2"));
  }
}

TEST(PrunedSearch, RandomizedCorporaMatchBruteForceAcrossShardsAndK) {
  util::Rng rng(0x9a55);
  for (const std::size_t shards : kShardCounts) {
    for (int trial = 0; trial < 6; ++trial) {
      SignatureDatabase db(shards);
      const std::size_t n = 50 + rng.below(60);
      for (std::size_t i = 0; i < n; ++i) {
        db.add(random_sparse(rng, 48, 10), "label-" + std::to_string(i % 7));
      }
      for (int q = 0; q < 6; ++q) {
        const auto query = random_sparse(rng, 48, 10);
        for (const std::size_t k :
             {std::size_t{0}, std::size_t{1}, std::size_t{10}, db.size()}) {
          expect_pruned_equivalence(
              db, query,
              k, "shards " + std::to_string(shards) + " trial " +
                     std::to_string(trial) + " query " + std::to_string(q) +
                     " k " + std::to_string(k));
        }
      }
    }
  }
}

TEST(PrunedSearch, NegativeWeightsMatchBruteForce) {
  // tf-idf weights are non-negative, but the pruned bounds must not assume
  // it: per-term minima bound negative query weights, and the
  // Cauchy–Schwarz remainder is sign-agnostic.
  util::Rng rng(0x4e9a7e);
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase db(shards);
    for (int i = 0; i < 70; ++i) {
      db.add(random_sparse(rng, 32, 10, /*allow_negative=*/true),
             "label-" + std::to_string(i % 5));
    }
    for (int q = 0; q < 12; ++q) {
      const auto query = random_sparse(rng, 32, 10, /*allow_negative=*/true);
      expect_pruned_equivalence(db, query, 8,
                                "negative shards " + std::to_string(shards) +
                                    " query " + std::to_string(q));
    }
  }
}

TEST(PrunedSearch, AdversarialTiesDuplicatesAndZeroWeights) {
  // Exact duplicates tie on every metric, so ranking degenerates to the
  // ascending-id tie-break; empty documents and the empty query probe the
  // zero-weight conventions (cosine 0, euclidean -|q|). Duplicates take
  // identical accumulation sequences in the pruned path, so their scores
  // tie exactly and the order must match the scan's everywhere.
  const auto base = vsm::SparseVector::from_entries({{3, 0.6}, {11, 0.8}});
  const auto other = vsm::SparseVector::from_entries({{3, 1.0}, {7, 0.2}});
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase db(shards);
    for (int rep = 0; rep < 5; ++rep) db.add(base, "dup-base");
    for (int rep = 0; rep < 5; ++rep) db.add(other, "dup-other");
    db.add(vsm::SparseVector(), "empty-a");
    db.add(vsm::SparseVector(), "empty-b");
    db.add(base.scaled(2.0), "scaled");
    for (const auto& query :
         {base, other, base.scaled(0.5), vsm::SparseVector(),
          vsm::SparseVector::from_entries({{999, 1.0}})}) {
      for (const std::size_t k :
           {std::size_t{1}, std::size_t{4}, db.size()}) {
        expect_pruned_equivalence(db, query, k,
                                  "ties shards " + std::to_string(shards) +
                                      " k " + std::to_string(k));
      }
    }
  }
}

/// Clustered log-normal corpus — the shape pruning is built for: distinct
/// behavior classes whose signatures concentrate their mass on disjoint
/// term slices. Large enough that the pruned path leaves the give-up
/// branch and actually prunes (asserted via the counters).
index::InvertedIndex clustered_index(util::Rng& rng, std::size_t docs,
                                     std::uint32_t dimension,
                                     std::size_t classes, std::size_t nnz,
                                     std::vector<vsm::SparseVector>* out) {
  std::vector<std::vector<std::uint32_t>> perm(
      classes, std::vector<std::uint32_t>(dimension));
  for (std::size_t c = 0; c < classes; ++c) {
    std::iota(perm[c].begin(), perm[c].end(), 0u);
    if (c > 0) {
      for (std::uint32_t i = dimension; i > 1; --i) {
        std::swap(perm[c][i - 1], perm[c][rng.below(i)]);
      }
    }
  }
  index::InvertedIndex idx;
  for (std::size_t d = 0; d < docs; ++d) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (std::size_t i = 0; i < nnz; ++i) {
      // Zipf-ish rank skew via squared uniform; log-normal magnitudes.
      const auto rank = static_cast<std::size_t>(
          rng.uniform() * rng.uniform() * static_cast<double>(dimension));
      entries.emplace_back(perm[d % classes][std::min<std::size_t>(
                               rank, dimension - 1)],
                           std::exp(rng.normal(0.0, 2.0)));
    }
    auto doc = vsm::SparseVector::from_entries(std::move(entries))
                   .l2_normalized();
    if (out != nullptr) out->push_back(doc);
    idx.add(doc);
  }
  return idx;
}

TEST(PrunedSearch, ClusteredCorpusActuallyPrunesAndStaysEquivalent) {
  util::Rng rng(0xc1a57e9);
  std::vector<vsm::SparseVector> docs;
  const auto idx = clustered_index(rng, 6000, 256, 4, 24, &docs);
  index::TopKScratch scratch;
  index::PruneStats total;
  for (int q = 0; q < 12; ++q) {
    const auto& query = docs[rng.below(docs.size())];
    for (const auto metric :
         {index::Metric::kCosine, index::Metric::kEuclidean}) {
      const auto exact = idx.top_k(query, 10, metric, &scratch);
      index::PruneStats stats;
      const auto pruned = idx.top_k_pruned(query, 10, metric, &scratch,
                                           index::InvertedIndex::kNoSeed,
                                           &stats);
      ASSERT_EQ(pruned.size(), exact.size()) << "query " << q;
      for (std::size_t r = 0; r < exact.size(); ++r) {
        EXPECT_EQ(pruned[r].doc, exact[r].doc) << "query " << q << " rank " << r;
        EXPECT_NEAR(pruned[r].score, exact[r].score, kScoreTolerance)
            << "query " << q << " rank " << r;
      }
      EXPECT_EQ(stats.docs_scored + stats.docs_pruned, idx.size())
          << "query " << q;
      EXPECT_LE(stats.postings_visited, idx.num_postings_for(query));
      total += stats;
    }
  }
  // The suite must exercise real pruning, not just the give-up fallback.
  EXPECT_GT(total.docs_pruned, total.docs_scored);
}

TEST(PrunedSearch, PerTermBoundsStayFreshUnderIncrementalAdd) {
  // add() must keep the per-term max/min weights current even when adds
  // interleave with queries — a stale bound would make the pruned path
  // silently drop documents whose new weights beat the cached maximum.
  util::Rng rng(0xadd5);
  index::InvertedIndex idx;
  std::vector<vsm::SparseVector> docs;
  index::TopKScratch scratch;
  for (int i = 0; i < 120; ++i) {
    const auto doc = random_sparse(rng, 24, 8, /*allow_negative=*/true);
    docs.push_back(doc);
    idx.add(doc);

    // Reference bounds recomputed from scratch over every stored doc.
    std::vector<double> max_ref(24, 0.0), min_ref(24, 0.0);
    std::vector<bool> seen(24, false);
    for (const auto& stored : docs) {
      const auto idxs = stored.indices();
      const auto vals = stored.values();
      for (std::size_t t = 0; t < idxs.size(); ++t) {
        if (!seen[idxs[t]]) {
          seen[idxs[t]] = true;
          max_ref[idxs[t]] = min_ref[idxs[t]] = vals[t];
        } else {
          max_ref[idxs[t]] = std::max(max_ref[idxs[t]], vals[t]);
          min_ref[idxs[t]] = std::min(min_ref[idxs[t]], vals[t]);
        }
      }
    }
    for (std::uint32_t t = 0; t < 24; ++t) {
      EXPECT_DOUBLE_EQ(idx.max_weight(t), max_ref[t]) << "term " << t;
      EXPECT_DOUBLE_EQ(idx.min_weight(t), min_ref[t]) << "term " << t;
    }

    // And the pruned results keep matching the exact path after every add.
    if (i % 10 == 9) {
      const auto query = random_sparse(rng, 24, 8, /*allow_negative=*/true);
      for (const auto metric :
           {index::Metric::kCosine, index::Metric::kEuclidean}) {
        const auto exact = idx.top_k(query, 5, metric, &scratch);
        const auto pruned = idx.top_k_pruned(query, 5, metric, &scratch);
        ASSERT_EQ(pruned.size(), exact.size()) << "after add " << i;
        for (std::size_t r = 0; r < exact.size(); ++r) {
          EXPECT_EQ(pruned[r].doc, exact[r].doc) << "after add " << i;
          EXPECT_NEAR(pruned[r].score, exact[r].score, kScoreTolerance)
              << "after add " << i;
        }
      }
    }
  }
}

TEST(PrunedSearch, CrossShardSeedingNeverChangesResults) {
  // A seeded threshold may only prune documents provably below the global
  // k-th best, so carrying the floor across shards (in any order) must
  // produce exactly the same merged hits as independent per-shard pruning
  // and as the exact path — while never scoring more documents.
  util::Rng rng(0x5eed5);
  exec::ShardedIndex index(3);
  std::vector<vsm::SparseVector> docs;
  for (int i = 0; i < 400; ++i) {
    auto doc = random_sparse(rng, 40, 9);
    docs.push_back(doc);
    index.add(docs.back());
  }
  index::TopKScratch scratch;
  for (int q = 0; q < 15; ++q) {
    const auto query = random_sparse(rng, 40, 9);
    if (query.empty()) continue;
    for (const auto metric :
         {index::Metric::kCosine, index::Metric::kEuclidean}) {
      const std::size_t k = 7;
      index::PruneStats seeded_stats, independent_stats;
      const auto run = [&](bool seed, index::PruneStats* stats) {
        std::vector<index::IndexHit> merged;
        double floor = index::InvertedIndex::kNoSeed;
        for (std::size_t s = 0; s < index.num_shards(); ++s) {
          auto hits = index.shard(s).top_k_pruned(
              query, k, metric, &scratch,
              seed ? floor : index::InvertedIndex::kNoSeed, stats);
          if (seed && hits.size() == k) {
            floor = std::max(floor, hits.back().score);
          }
          for (auto& hit : hits) {
            hit.doc = index.global_of(s, hit.doc);
            merged.push_back(hit);
          }
        }
        std::sort(merged.begin(), merged.end(), index::ranks_better);
        if (merged.size() > k) merged.resize(k);
        return merged;
      };
      const auto seeded = run(true, &seeded_stats);
      const auto independent = run(false, &independent_stats);
      const exec::QueryEngine reference(index);
      const auto exact = reference.run(query, k, metric);
      ASSERT_EQ(seeded.size(), exact.size()) << "query " << q;
      ASSERT_EQ(independent.size(), exact.size()) << "query " << q;
      for (std::size_t r = 0; r < exact.size(); ++r) {
        EXPECT_EQ(seeded[r].doc, exact[r].doc) << "query " << q;
        EXPECT_EQ(independent[r].doc, exact[r].doc) << "query " << q;
        EXPECT_NEAR(seeded[r].score, exact[r].score, kScoreTolerance);
        EXPECT_NEAR(independent[r].score, exact[r].score, kScoreTolerance);
      }
      EXPECT_LE(seeded_stats.docs_scored, independent_stats.docs_scored)
          << "query " << q;
    }
  }
}

TEST(PrunedSearch, EngineDispatchPathMatchesExactUnderThreads) {
  // Above the engine's inline cutoff with a real pool: the (shard,
  // query-block) tasks share per-query atomic floors, and the merged
  // results must still match the exact path for every query. This is the
  // configuration the TSan CI job exercises for the new cross-thread
  // threshold hand-off.
  util::Rng rng(0xd15b);
  exec::ShardedIndex index(4);
  for (int i = 0; i < 5000; ++i) index.add(random_sparse(rng, 32, 8));

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 24; ++q) queries.push_back(random_sparse(rng, 32, 8));

  exec::TaskPool pool(3);
  const exec::QueryEngine engine(index, &pool);
  for (const auto metric :
       {index::Metric::kCosine, index::Metric::kEuclidean}) {
    exec::QueryStats stats;
    const auto exact = engine.run_batch(queries, 6, metric);
    const auto pruned = engine.run_batch(queries, 6, metric,
                                         exec::PruningMode::kMaxScore, &stats);
    ASSERT_EQ(pruned.size(), exact.size());
    std::size_t eligible = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      eligible += !queries[q].empty();
      ASSERT_EQ(pruned[q].size(), exact[q].size()) << "query " << q;
      for (std::size_t r = 0; r < exact[q].size(); ++r) {
        EXPECT_EQ(pruned[q][r].doc, exact[q][r].doc)
            << "query " << q << " rank " << r;
        EXPECT_NEAR(pruned[q][r].score, exact[q][r].score, kScoreTolerance)
            << "query " << q << " rank " << r;
      }
    }
    // Every eligible query considered every document exactly once.
    EXPECT_EQ(stats.docs_scored + stats.docs_pruned, eligible * index.size());
  }
}

TEST(PrunedSearch, DatabaseBatchClassifyAndRetrievalHonorMaxScore) {
  util::Rng rng(0xdb5);
  SignatureDatabase db(2);
  util::Rng corpus_rng(0xfeedbee5);
  for (int i = 0; i < 80; ++i) {
    db.add(random_sparse(corpus_rng, 32, 8), "label-" + std::to_string(i % 4));
  }
  std::vector<vsm::SparseVector> queries;
  std::vector<RetrievalQuery> retrieval_queries;
  for (int q = 0; q < 20; ++q) {
    queries.push_back(random_sparse(rng, 32, 8));
    RetrievalQuery rq;
    rq.signature = queries.back();
    rq.true_label = "label-" + std::to_string(rng.below(4));
    retrieval_queries.push_back(std::move(rq));
  }
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const auto golden =
        db.search_batch(queries, 5, metric, ScanPolicy::kBruteForce);
    const auto pruned = db.search_batch(queries, 5, metric,
                                        ScanPolicy::kIndexed,
                                        PruningMode::kMaxScore);
    ASSERT_EQ(pruned.size(), golden.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      expect_hits_match(pruned[q], golden[q],
                        "batch query " + std::to_string(q));
    }
    for (int q = 0; q < 20; q += 3) {
      EXPECT_EQ(db.classify_by_syndrome(queries[q], metric,
                                        ScanPolicy::kIndexed,
                                        PruningMode::kMaxScore),
                db.classify_by_syndrome(queries[q], metric,
                                        ScanPolicy::kBruteForce))
          << "query " << q;
    }
    // Retrieval measures are functions of the retrieved labels only, and
    // the pruned path retrieves the identical ranked documents.
    const auto golden_quality = evaluate_retrieval(
        db, retrieval_queries, 5, metric, ScanPolicy::kBruteForce);
    const auto pruned_quality =
        evaluate_retrieval(db, retrieval_queries, 5, metric,
                           ScanPolicy::kIndexed, PruningMode::kMaxScore);
    EXPECT_DOUBLE_EQ(pruned_quality.precision_at_k,
                     golden_quality.precision_at_k);
    EXPECT_DOUBLE_EQ(pruned_quality.mean_reciprocal_rank,
                     golden_quality.mean_reciprocal_rank);
    EXPECT_DOUBLE_EQ(pruned_quality.top1_accuracy,
                     golden_quality.top1_accuracy);
  }
}

TEST(PrunedSearch, ExactModeStatsReportFullScan) {
  util::Rng rng(0x57a7);
  SignatureDatabase db(1);
  for (int i = 0; i < 50; ++i) {
    db.add(random_sparse(rng, 16, 6), "label");
  }
  auto query = random_sparse(rng, 16, 6);
  while (query.empty()) query = random_sparse(rng, 16, 6);
  QueryStats stats;
  (void)db.search(query, 5, SimilarityMetric::kCosine, ScanPolicy::kIndexed,
                  PruningMode::kExact, &stats);
  EXPECT_EQ(stats.docs_scored, db.size());
  EXPECT_EQ(stats.docs_pruned, 0u);
  EXPECT_EQ(stats.postings_visited, db.index().shard(0).num_postings_for(query));
}

}  // namespace
}  // namespace fmeter::core
