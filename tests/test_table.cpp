#include "util/table.hpp"

#include <gtest/gtest.h>

namespace fmeter::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, AlignmentArityMismatchThrows) {
  EXPECT_THROW(TextTable({"a", "b"}, {Align::kLeft}), std::invalid_argument);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table({"x", "y"});
  table.add_row({"longlabel", "1"});
  table.add_row({"s", "2"});
  const std::string out = table.to_string();
  // Each line has the same length (pad to column widths).
  std::size_t expected = std::string::npos;
  std::size_t start = 0;
  int checked = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t length = end - start;
    if (expected == std::string::npos) expected = length;
    if (out[start] != '-') {
      EXPECT_EQ(length, expected);
    }
    start = end + 1;
    ++checked;
  }
  EXPECT_GE(checked, 4);
}

TEST(TableFormat, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 3), "2.000");
}

TEST(TableFormat, MeanSem) {
  EXPECT_EQ(mean_sem(4.828, 0.585, 3), "4.828 ± 0.585");
}

TEST(TableFormat, RatioAndPercent) {
  EXPECT_EQ(ratio(5.748), "5.748");
  EXPECT_EQ(percent(24.07), "24.07 %");
  EXPECT_EQ(percent(61.125, 1), "61.1 %");
}

}  // namespace
}  // namespace fmeter::util
