// Property suite for the frozen posting arena and parallel bulk ingest.
//
// The freeze/tail contract: freeze() changes the memory layout, never the
// answers — the exact path stays *bit-identical* across any interleaving of
// add(), freeze() and queries, the pruned path keeps its same-set/
// same-order/1e-9 contract, and add_batch() (parallel per-shard builds on a
// TaskPool, frozen at the end) produces byte-for-byte the same index as
// sequential add() plus freeze(). Everything here is seeded-RNG and
// wall-clock free; the parallel-build tests run under the TSan CI job.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "exec/task_pool.hpp"
#include "fmeter/database.hpp"
#include "index/inverted_index.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

constexpr double kScoreTolerance = 1e-9;
constexpr std::size_t kShardCounts[] = {1, 2, 5};

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz,
                                bool allow_negative = false) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);  // may be 0 => empty vector
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto term =
        static_cast<vsm::SparseVector::Index>(rng.below(dimension));
    double value = rng.uniform(0.05, 1.0);
    if (allow_negative && rng.bernoulli(0.3)) value = -value;
    entries.emplace_back(term, value);
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

/// Bit-identical hits: same docs, same order, scores equal to the last bit.
void expect_hits_identical(const std::vector<index::IndexHit>& got,
                           const std::vector<index::IndexHit>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].doc, want[r].doc) << context << " rank " << r;
    EXPECT_EQ(got[r].score, want[r].score) << context << " rank " << r;
  }
}

void expect_hits_close(const std::vector<index::IndexHit>& got,
                       const std::vector<index::IndexHit>& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].doc, want[r].doc) << context << " rank " << r;
    EXPECT_NEAR(got[r].score, want[r].score, kScoreTolerance)
        << context << " rank " << r;
  }
}

TEST(FrozenIndex, FreezePreservesExactPathBitIdentically) {
  util::Rng rng(0xf4023);
  for (int trial = 0; trial < 8; ++trial) {
    index::InvertedIndex mutable_idx;
    index::InvertedIndex frozen_idx;
    const std::size_t n = 40 + rng.below(80);
    util::Rng docs_a(0x1000 + static_cast<std::uint64_t>(trial));
    util::Rng docs_b(0x1000 + static_cast<std::uint64_t>(trial));
    for (std::size_t i = 0; i < n; ++i) {
      mutable_idx.add(random_sparse(docs_a, 48, 10, /*allow_negative=*/true));
      frozen_idx.add(random_sparse(docs_b, 48, 10, /*allow_negative=*/true));
    }
    frozen_idx.freeze();
    EXPECT_TRUE(frozen_idx.frozen());
    EXPECT_EQ(frozen_idx.frozen_docs(), n);
    EXPECT_EQ(frozen_idx.num_postings(), mutable_idx.num_postings());
    EXPECT_EQ(frozen_idx.num_terms(), mutable_idx.num_terms());
    for (int q = 0; q < 6; ++q) {
      const auto query = random_sparse(rng, 48, 10, /*allow_negative=*/true);
      for (const auto metric :
           {index::Metric::kCosine, index::Metric::kEuclidean}) {
        for (const std::size_t k : {std::size_t{1}, std::size_t{7}, n}) {
          const auto want = mutable_idx.top_k(query, k, metric);
          const auto got = frozen_idx.top_k(query, k, metric);
          expect_hits_identical(got, want,
                                "trial " + std::to_string(trial) + " k " +
                                    std::to_string(k));
          // The frozen pruned path keeps the weaker contract vs the same
          // golden results.
          const auto pruned = frozen_idx.top_k_pruned(query, k, metric);
          expect_hits_close(pruned, want,
                            "pruned trial " + std::to_string(trial) + " k " +
                                std::to_string(k));
        }
      }
    }
  }
}

TEST(FrozenIndex, BulkFreezeMatchesIncrementalAddAcrossShardCounts) {
  util::Rng rng(0xb01c);
  for (const std::size_t shards : kShardCounts) {
    std::vector<vsm::SparseVector> signatures;
    std::vector<std::string> labels;
    for (int i = 0; i < 90; ++i) {
      signatures.push_back(random_sparse(rng, 40, 9));
      labels.push_back("label-" + std::to_string(i % 6));
    }
    SignatureDatabase incremental(shards);
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      incremental.add(signatures[i], labels[i]);
    }
    SignatureDatabase bulk(shards);
    const std::size_t first = bulk.add_batch(signatures, labels);
    EXPECT_EQ(first, 0u);
    ASSERT_EQ(bulk.size(), incremental.size());
    EXPECT_TRUE(bulk.index().frozen());
    for (int q = 0; q < 8; ++q) {
      const auto query = random_sparse(rng, 40, 9);
      for (const auto metric :
           {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
        const auto golden =
            incremental.search(query, 8, metric, ScanPolicy::kBruteForce);
        const auto exact = bulk.search(query, 8, metric);
        ASSERT_EQ(exact.size(), golden.size());
        for (std::size_t r = 0; r < golden.size(); ++r) {
          EXPECT_EQ(exact[r].id, golden[r].id) << "shards " << shards;
          EXPECT_EQ(exact[r].label, golden[r].label) << "shards " << shards;
          EXPECT_EQ(exact[r].score, golden[r].score) << "shards " << shards;
        }
        const auto pruned = bulk.search(query, 8, metric, ScanPolicy::kIndexed,
                                        PruningMode::kMaxScore);
        ASSERT_EQ(pruned.size(), golden.size());
        for (std::size_t r = 0; r < golden.size(); ++r) {
          EXPECT_EQ(pruned[r].id, golden[r].id) << "shards " << shards;
          EXPECT_NEAR(pruned[r].score, golden[r].score, kScoreTolerance)
              << "shards " << shards;
        }
      }
    }
  }
}

TEST(FrozenIndex, BoundsStayFreshAcrossFreezeAddQueryInterleavings) {
  // The per-term max/min bounds span arena and tail; the per-block metadata
  // covers only the arena. A freshness bug in either would make the pruned
  // path silently drop documents — so interleave every mutation the index
  // supports and re-check the pruned contract after each step.
  util::Rng rng(0x1ce9);
  index::InvertedIndex idx;
  index::TopKScratch scratch;
  const auto check = [&](const std::string& context) {
    for (int q = 0; q < 4; ++q) {
      const auto query = random_sparse(rng, 32, 8, /*allow_negative=*/true);
      for (const auto metric :
           {index::Metric::kCosine, index::Metric::kEuclidean}) {
        const auto exact = idx.top_k(query, 6, metric, &scratch);
        const auto pruned = idx.top_k_pruned(query, 6, metric, &scratch);
        expect_hits_close(pruned, exact, context);
      }
    }
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 25; ++i) {
      idx.add(random_sparse(rng, 32, 8, /*allow_negative=*/true));
    }
    check("tail round " + std::to_string(round));
    if (round % 2 == 0) {
      idx.freeze();
      EXPECT_TRUE(idx.frozen()) << "round " << round;
      check("frozen round " + std::to_string(round));
    } else {
      EXPECT_LT(idx.frozen_docs(), idx.size()) << "round " << round;
    }
  }
  // Re-freezing folds the tail back in; results must not move.
  idx.freeze();
  idx.freeze();  // idempotent
  check("after double freeze");
}

TEST(FrozenIndex, ParallelBulkBuildIsDeterministic) {
  // add_batch fans per-shard builds onto the pool; the result must be
  // byte-for-byte the sequential build (same shard contents, same stats,
  // bit-identical queries) on every run. This is the configuration the
  // TSan CI job exercises for the parallel ingest path.
  util::Rng rng(0xde7e3);
  std::vector<vsm::SparseVector> docs;
  for (int i = 0; i < 6000; ++i) docs.push_back(random_sparse(rng, 64, 10));

  exec::ShardedIndex sequential(4);
  for (const auto& doc : docs) sequential.add(doc);
  sequential.freeze();

  exec::TaskPool pool(3);
  for (int run = 0; run < 2; ++run) {
    exec::ShardedIndex parallel(4);
    parallel.add_batch(std::span<const vsm::SparseVector>(docs), &pool);
    ASSERT_EQ(parallel.size(), sequential.size()) << "run " << run;
    EXPECT_TRUE(parallel.frozen()) << "run " << run;
    EXPECT_EQ(parallel.num_terms(), sequential.num_terms()) << "run " << run;
    EXPECT_EQ(parallel.num_postings(), sequential.num_postings())
        << "run " << run;
    const auto seq_stats = sequential.shard_stats();
    const auto par_stats = parallel.shard_stats();
    ASSERT_EQ(par_stats.size(), seq_stats.size());
    for (std::size_t s = 0; s < seq_stats.size(); ++s) {
      EXPECT_EQ(par_stats[s].docs, seq_stats[s].docs) << "shard " << s;
      EXPECT_EQ(par_stats[s].frozen_docs, seq_stats[s].frozen_docs)
          << "shard " << s;
      EXPECT_EQ(par_stats[s].postings, seq_stats[s].postings) << "shard " << s;
      EXPECT_EQ(par_stats[s].terms, seq_stats[s].terms) << "shard " << s;
    }
    const exec::QueryEngine seq_engine(sequential, &pool);
    const exec::QueryEngine par_engine(parallel, &pool);
    for (int q = 0; q < 10; ++q) {
      const auto query = random_sparse(rng, 64, 10);
      for (const auto metric :
           {index::Metric::kCosine, index::Metric::kEuclidean}) {
        expect_hits_identical(par_engine.run(query, 5, metric),
                              seq_engine.run(query, 5, metric),
                              "run " + std::to_string(run) + " query " +
                                  std::to_string(q));
      }
    }
  }
}

TEST(FrozenIndex, IncrementalAddAfterBulkBatchKeepsContracts) {
  // The frozen arena plus a growing unfrozen tail is the steady state of a
  // live archive: bulk-load history, then stream new incidents in.
  util::Rng rng(0x7a11);
  std::vector<vsm::SparseVector> docs;
  std::vector<std::string> labels;
  for (int i = 0; i < 60; ++i) {
    docs.push_back(random_sparse(rng, 36, 8));
    labels.push_back("bulk-" + std::to_string(i % 4));
  }
  SignatureDatabase db(2);
  db.add_batch(docs, labels);
  SignatureDatabase reference(2);
  for (std::size_t i = 0; i < docs.size(); ++i) reference.add(docs[i], labels[i]);
  for (int i = 0; i < 30; ++i) {
    const auto doc = random_sparse(rng, 36, 8);
    db.add(doc, "tail");
    reference.add(doc, "tail");
    if (i % 10 == 9) {
      const auto query = random_sparse(rng, 36, 8);
      for (const auto metric :
           {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
        const auto golden =
            reference.search(query, 7, metric, ScanPolicy::kBruteForce);
        const auto exact = db.search(query, 7, metric);
        const auto pruned = db.search(query, 7, metric, ScanPolicy::kIndexed,
                                      PruningMode::kMaxScore);
        ASSERT_EQ(exact.size(), golden.size());
        ASSERT_EQ(pruned.size(), golden.size());
        for (std::size_t r = 0; r < golden.size(); ++r) {
          EXPECT_EQ(exact[r].id, golden[r].id) << "after tail add " << i;
          EXPECT_EQ(exact[r].score, golden[r].score) << "after tail add " << i;
          EXPECT_EQ(pruned[r].id, golden[r].id) << "after tail add " << i;
          EXPECT_NEAR(pruned[r].score, golden[r].score, kScoreTolerance)
              << "after tail add " << i;
        }
      }
    }
  }
}

TEST(FrozenIndex, MemoryBreakdownComponentsSumAndTrackFreezing) {
  util::Rng rng(0x3e3);
  index::InvertedIndex idx;
  for (int i = 0; i < 200; ++i) idx.add(random_sparse(rng, 48, 10));
  const auto before = idx.memory_breakdown();
  EXPECT_EQ(before.total(), idx.memory_bytes());
  EXPECT_GT(before.postings, 0u);
  EXPECT_GT(before.forward, 0u);
  EXPECT_EQ(before.blocks, 0u);  // no arena yet

  idx.freeze();
  const auto after = idx.memory_breakdown();
  EXPECT_EQ(after.total(), idx.memory_bytes());
  EXPECT_GT(after.blocks, 0u);
  EXPECT_GT(after.offsets, 0u);
  EXPECT_GT(after.postings, 0u);

  // Sharded aggregation: per-shard breakdowns sum to (at most) the global
  // one, which only adds this layer's term bitmap on top.
  exec::ShardedIndex sharded(3);
  for (int i = 0; i < 150; ++i) sharded.add(random_sparse(rng, 48, 10));
  sharded.freeze();
  const auto global = sharded.memory_breakdown();
  EXPECT_EQ(global.total(), sharded.memory_bytes());
  index::MemoryBreakdown summed;
  for (const auto& stats : sharded.shard_stats()) {
    EXPECT_EQ(stats.memory.total(), stats.memory_bytes);
    EXPECT_EQ(stats.frozen_docs, stats.docs);
    summed += stats.memory;
  }
  EXPECT_EQ(global.postings, summed.postings);
  EXPECT_EQ(global.blocks, summed.blocks);
  EXPECT_EQ(global.forward, summed.forward);
  EXPECT_GE(global.offsets, summed.offsets);  // + term bitmap
}

TEST(FrozenIndex, AutoModeResolvesByShardSizeAndMatchesGolden) {
  using index::InvertedIndex;
  using index::PruningMode;
  // The measured crossovers: on the mutable layout pruning loses below
  // ~4k docs; the frozen arena's exact kernel pushes its crossover past
  // 10k (see resolve_auto).
  EXPECT_EQ(InvertedIndex::resolve_auto(1000, 10, false), PruningMode::kExact);
  EXPECT_EQ(InvertedIndex::resolve_auto(4096, 10, false),
            PruningMode::kMaxScore);
  EXPECT_EQ(InvertedIndex::resolve_auto(10000, 10, true), PruningMode::kExact);
  EXPECT_EQ(InvertedIndex::resolve_auto(100000, 10, true),
            PruningMode::kMaxScore);
  // Near-full retrieval gives the bounds nothing to discard.
  EXPECT_EQ(InvertedIndex::resolve_auto(8000, 4000, false),
            PruningMode::kExact);

  util::Rng rng(0xa070);
  // Small database: kAuto must take the exact path — bit-identical hits.
  SignatureDatabase small(2);
  for (int i = 0; i < 120; ++i) {
    small.add(random_sparse(rng, 32, 8), "label-" + std::to_string(i % 3));
  }
  for (int q = 0; q < 6; ++q) {
    const auto query = random_sparse(rng, 32, 8);
    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      const auto golden = small.search(query, 5, metric, ScanPolicy::kBruteForce);
      const auto autod = small.search(query, 5, metric, ScanPolicy::kIndexed,
                                      PruningMode::kAuto);
      ASSERT_EQ(autod.size(), golden.size());
      for (std::size_t r = 0; r < golden.size(); ++r) {
        EXPECT_EQ(autod[r].id, golden[r].id);
        EXPECT_EQ(autod[r].score, golden[r].score);  // exact ⇒ bit-identical
      }
    }
  }

  // Large single shard: kAuto resolves to pruned — same set/order, 1e-9.
  // Clustered classes on permuted term slices, the corpus shape pruning
  // works on (a uniform random corpus takes the give-up branch by design).
  std::vector<std::vector<std::uint32_t>> perm(4,
                                               std::vector<std::uint32_t>(128));
  for (std::size_t c = 0; c < perm.size(); ++c) {
    for (std::uint32_t i = 0; i < 128; ++i) perm[c][i] = i;
    if (c > 0) {
      for (std::uint32_t i = 128; i > 1; --i) {
        std::swap(perm[c][i - 1], perm[c][rng.below(i)]);
      }
    }
  }
  std::vector<vsm::SparseVector> docs;
  for (int i = 0; i < 5000; ++i) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (int t = 0; t < 16; ++t) {
      const auto rank = static_cast<std::size_t>(
          rng.uniform() * rng.uniform() * 128.0);
      entries.emplace_back(
          perm[static_cast<std::size_t>(i) % perm.size()]
              [std::min<std::size_t>(rank, 127)],
          std::exp(rng.normal(0.0, 2.0)));
    }
    docs.push_back(
        vsm::SparseVector::from_entries(std::move(entries)).l2_normalized());
  }
  exec::ShardedIndex sharded(1);
  // A 5k *mutable* shard sits above the mutable crossover — kAuto must
  // prune there; the same corpus bulk-frozen sits below the (higher)
  // frozen crossover — kAuto must take the frozen exact path, which the
  // bit-identical comparison pins down.
  for (const auto& doc : docs) sharded.add(doc);
  const exec::QueryEngine engine(sharded);
  exec::ShardedIndex frozen_sharded(1);
  frozen_sharded.add_batch(std::span<const vsm::SparseVector>(docs));
  const exec::QueryEngine frozen_engine(frozen_sharded);
  for (int q = 0; q < 5; ++q) {
    const auto& query = docs[rng.below(docs.size())];
    exec::QueryStats stats;
    const auto exact = engine.run(query, 10, index::Metric::kCosine);
    const auto autod = engine.run(query, 10, index::Metric::kCosine,
                                  PruningMode::kAuto, &stats);
    expect_hits_close(autod, exact, "auto large query " + std::to_string(q));
    EXPECT_GT(stats.docs_pruned, 0u) << "auto did not prune a mutable 5k shard";

    const auto frozen_exact =
        frozen_engine.run(query, 10, index::Metric::kCosine);
    exec::QueryStats frozen_stats;
    const auto frozen_auto = frozen_engine.run(
        query, 10, index::Metric::kCosine, PruningMode::kAuto, &frozen_stats);
    expect_hits_identical(frozen_auto, frozen_exact,
                          "frozen auto query " + std::to_string(q));
    EXPECT_EQ(frozen_stats.docs_pruned, 0u)
        << "frozen 5k shard sits below the frozen crossover";
  }
}

TEST(FrozenIndex, BlockSkippingReducesPostingsVisited) {
  // The workload block skipping exists for: a tight cluster of mutually
  // similar signatures (one recurring behavior) buried in a large archive
  // of unrelated ones, queried with k spanning the cluster. The survivors
  // are exactly the cluster, the doc reordering makes them contiguous in
  // internal id space, and finishing them off the forward store is dearer
  // than walking the remaining lists — so the tail phase walks frozen
  // lists block-by-block and skips every block that holds only archive
  // noise. The frozen path must return the same hits as the unfrozen one
  // while touching fewer postings and actually skipping blocks.
  util::Rng rng(0xb10c);
  constexpr std::size_t kClusterDocs = 1200;
  constexpr std::size_t kNoiseDocs = 30000;
  constexpr std::uint32_t kClusterTerms = 50;  // terms 0..49 are the cluster's
  constexpr std::uint32_t kDim = 950;
  index::InvertedIndex unfrozen;
  for (std::size_t d = 0; d < kClusterDocs; ++d) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (std::uint32_t t = 0; t < kClusterTerms; ++t) {
      entries.emplace_back(t, 1.0 + 0.01 * rng.uniform());
    }
    unfrozen.add(
        vsm::SparseVector::from_entries(std::move(entries)).l2_normalized());
  }
  for (std::size_t d = 0; d < kNoiseDocs; ++d) {
    std::vector<vsm::SparseVector::Entry> entries;
    // One cluster term each — the cluster's posting lists are mostly noise
    // postings, which is what gives the skip loop whole blocks to drop.
    entries.emplace_back(static_cast<std::uint32_t>(d % kClusterTerms), 0.2);
    for (int i = 0; i < 50; ++i) {
      entries.emplace_back(
          kClusterTerms + static_cast<std::uint32_t>(
                              rng.below(kDim - kClusterTerms)),
          0.5 + rng.uniform());
    }
    unfrozen.add(
        vsm::SparseVector::from_entries(std::move(entries)).l2_normalized());
  }
  index::InvertedIndex frozen = unfrozen;
  frozen.freeze();

  index::TopKScratch scratch;
  index::PruneStats unfrozen_stats, frozen_stats;
  std::vector<vsm::SparseVector::Entry> q_entries;
  for (std::uint32_t t = 0; t < kClusterTerms; ++t) q_entries.emplace_back(t, 1.0);
  const auto query =
      vsm::SparseVector::from_entries(std::move(q_entries)).l2_normalized();
  for (const auto metric :
       {index::Metric::kCosine, index::Metric::kEuclidean}) {
    for (const std::size_t k : {std::size_t{10}, std::size_t{1000}}) {
      const auto want = unfrozen.top_k_pruned(query, k, metric, &scratch,
                                              index::InvertedIndex::kNoSeed,
                                              &unfrozen_stats);
      const auto got = frozen.top_k_pruned(query, k, metric, &scratch,
                                           index::InvertedIndex::kNoSeed,
                                           &frozen_stats);
      expect_hits_close(got, want, "k " + std::to_string(k));
    }
  }
  EXPECT_GT(frozen_stats.blocks_skipped, 0u)
      << "frozen: scored " << frozen_stats.docs_scored << " pruned "
      << frozen_stats.docs_pruned << " visited "
      << frozen_stats.postings_visited << " | unfrozen visited "
      << unfrozen_stats.postings_visited;
  EXPECT_LT(frozen_stats.postings_visited, unfrozen_stats.postings_visited);
  EXPECT_EQ(frozen_stats.docs_scored + frozen_stats.docs_pruned,
            unfrozen_stats.docs_scored + unfrozen_stats.docs_pruned);
}

TEST(FrozenIndex, DegenerateStatesStayDefined) {
  index::InvertedIndex idx;
  idx.freeze();  // freezing an empty index is a no-op
  EXPECT_TRUE(idx.frozen());
  EXPECT_EQ(idx.top_k(vsm::SparseVector::from_entries({{1, 1.0}}), 3).size(),
            0u);
  idx.add(vsm::SparseVector::from_entries({{2, 0.5}}));
  EXPECT_FALSE(idx.frozen());
  idx.freeze();
  const auto query = vsm::SparseVector::from_entries({{2, 1.0}});
  EXPECT_EQ(idx.top_k(query, 0).size(), 0u);          // k == 0
  EXPECT_EQ(idx.top_k(vsm::SparseVector(), 3).size(), 0u);  // empty query
  ASSERT_EQ(idx.top_k(query, 3).size(), 1u);
  EXPECT_EQ(idx.top_k_pruned(query, 3).size(), 1u);

  // Empty documents freeze too (no postings, still ranked by the scan rule).
  index::InvertedIndex with_empty;
  with_empty.add(vsm::SparseVector());
  with_empty.add(vsm::SparseVector::from_entries({{0, 1.0}}));
  with_empty.freeze();
  const auto hits = with_empty.top_k(vsm::SparseVector::from_entries({{0, 1.0}}),
                                     2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 1u);
  EXPECT_EQ(hits[1].doc, 0u);
}

}  // namespace
}  // namespace fmeter::core
