#include "trace/graph_tracer.hpp"

#include <gtest/gtest.h>

#include "cpu_time.hpp"
#include "simkern/kernel.hpp"
#include "trace/fmeter_tracer.hpp"

namespace fmeter::trace {
namespace {

simkern::KernelConfig small_config() {
  simkern::KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = 2;
  return config;
}

TEST(GraphTracer, CountsMatchInvocations) {
  simkern::Kernel kernel(small_config());
  GraphTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  const auto fn = kernel.id_of("vfs_read");
  for (int i = 0; i < 25; ++i) kernel.invoke(kernel.cpu(0), fn);
  EXPECT_EQ(tracer.stats(fn).calls, 25u);
  EXPECT_EQ(tracer.counts().counts[fn], 25u);
}

TEST(GraphTracer, EntryExitPairingBalances) {
  simkern::Kernel kernel(small_config());
  GraphTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  for (int i = 0; i < 500; ++i) {
    kernel.invoke(kernel.cpu(i % 2), static_cast<simkern::FunctionId>(i % 90));
  }
  EXPECT_EQ(tracer.open_frames(), 0u);
}

TEST(GraphTracer, DurationsPositiveAndOrdered) {
  simkern::Kernel kernel(small_config());
  GraphTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  const auto fn = kernel.id_of("schedule");
  for (int i = 0; i < 100; ++i) kernel.invoke(kernel.cpu(0), fn);
  const auto stats = tracer.stats(fn);
  EXPECT_GT(stats.total_ns, 0u);
  EXPECT_LE(stats.min_ns, stats.max_ns);
  EXPECT_LE(stats.min_ns * stats.calls, stats.total_ns);
  EXPECT_LE(stats.total_ns, stats.max_ns * stats.calls);
}

TEST(GraphTracer, WantsExitEventsOnlyForGraph) {
  simkern::Kernel kernel(small_config());
  GraphTracer graph(kernel.symbols(), 2);
  FmeterTracer fmeter(kernel.symbols(), 2);
  EXPECT_TRUE(graph.wants_exit_events());
  EXPECT_FALSE(fmeter.wants_exit_events());
}

TEST(GraphTracer, SpuriousExitIgnored) {
  simkern::Kernel kernel(small_config());
  GraphTracer tracer(kernel.symbols(), 2);
  // Exit without entry (tracer armed mid-call on the real system).
  tracer.on_function_exit(kernel.cpu(0), 5);
  EXPECT_EQ(tracer.stats(5).calls, 0u);
  EXPECT_EQ(tracer.open_frames(), 0u);
}

TEST(GraphTracer, ReportListsHotFunctions) {
  simkern::Kernel kernel(small_config());
  GraphTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  for (int i = 0; i < 50; ++i) kernel.invoke(kernel.cpu(0), kernel.id_of("kmalloc"));
  const std::string report = tracer.report(5);
  EXPECT_NE(report.find("kmalloc"), std::string::npos);
}

TEST(GraphTracer, CostsMoreThanCountingTracer) {
  simkern::Kernel kernel(small_config());
  GraphTracer graph(kernel.symbols(), kernel.num_cpus());
  FmeterTracer fmeter(kernel.symbols(), kernel.num_cpus());
  auto& cpu = kernel.cpu(0);

  auto time_with = [&](simkern::TraceHook* hook) {
    kernel.install_tracer(hook);
    for (int i = 0; i < 5000; ++i) kernel.invoke(cpu, 1);  // warm
    const double start = testing::cpu_seconds();
    for (int i = 0; i < 50000; ++i) {
      kernel.invoke(cpu, static_cast<simkern::FunctionId>(i % 800));
    }
    return testing::cpu_seconds() - start;
  };
  const double fmeter_time = time_with(&fmeter);
  const double graph_time = time_with(&graph);
  // Two clock reads + two dispatches per call vs one plain increment.
  EXPECT_GT(graph_time, fmeter_time * 1.5);
}

TEST(GraphTracer, ZeroCpusThrows) {
  simkern::Kernel kernel(small_config());
  EXPECT_THROW(GraphTracer(kernel.symbols(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fmeter::trace
