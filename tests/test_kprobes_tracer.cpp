#include "trace/kprobes_tracer.hpp"

#include <gtest/gtest.h>

#include "cpu_time.hpp"
#include "simkern/kernel.hpp"
#include "trace/fmeter_tracer.hpp"

namespace fmeter::trace {
namespace {

using fmeter::testing::cpu_seconds;

simkern::KernelConfig small_config() {
  simkern::KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = 2;
  return config;
}

TEST(KprobesTracer, CountsMatchInvocations) {
  simkern::Kernel kernel(small_config());
  KprobesTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  const auto fn = kernel.id_of("vfs_read");
  for (int i = 0; i < 41; ++i) kernel.invoke(kernel.cpu(0), fn);
  EXPECT_EQ(tracer.count(fn), 41u);
  EXPECT_EQ(tracer.probe_hits(), 41u);
}

TEST(KprobesTracer, SnapshotAggregatesCpus) {
  simkern::Kernel kernel(small_config());
  KprobesTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);
  kernel.invoke(kernel.cpu(0), 3);
  kernel.invoke(kernel.cpu(1), 3);
  EXPECT_EQ(tracer.snapshot().counts[3], 2u);
}

TEST(KprobesTracer, ZeroCpusThrows) {
  simkern::Kernel kernel(small_config());
  EXPECT_THROW(KprobesTracer(kernel.symbols(), 0), std::invalid_argument);
}

TEST(KprobesTracer, SameSignalAsFmeterAtHigherCost) {
  // Kprobes yields identical counts to Fmeter — the paper's point is not
  // about fidelity but about the per-hit cost of the double trap.
  simkern::Kernel kernel(small_config());
  FmeterTracer fmeter(kernel.symbols(), kernel.num_cpus());
  KprobesTracer kprobes(kernel.symbols(), kernel.num_cpus());
  auto& cpu = kernel.cpu(0);

  auto run = [&](simkern::TraceHook* hook) {
    kernel.install_tracer(hook);
    for (int i = 0; i < 20000; ++i) {
      kernel.invoke(cpu, static_cast<simkern::FunctionId>(i % 700));
    }
  };
  // Warm both paths once, then time.
  run(&fmeter);
  run(&kprobes);
  fmeter.reset();

  const double t0 = cpu_seconds();
  run(&fmeter);
  const double t1 = cpu_seconds();
  run(&kprobes);
  const double t2 = cpu_seconds();

  const auto fmeter_snap = fmeter.snapshot();
  const auto kprobes_snap = kprobes.snapshot();
  for (std::size_t fn = 0; fn < 700; ++fn) {
    // Fmeter counted one run; kprobes two (warm + timed).
    EXPECT_EQ(kprobes_snap.counts[fn], 2 * fmeter_snap.counts[fn]);
  }
  const double fmeter_time = t1 - t0;
  const double kprobes_time = t2 - t1;
  EXPECT_GT(kprobes_time, fmeter_time * 1.5);
}

}  // namespace
}  // namespace fmeter::trace
