// Robustness and failure-injection tests: malformed wire data, degenerate
// ML inputs, and tracer misuse must fail loudly (exceptions) — never crash
// or silently corrupt.
#include <gtest/gtest.h>

#include <sstream>

#include "fmeter/fmeter.hpp"
#include "util/rng.hpp"
#include "ml/decision_tree.hpp"
#include "vsm/corpus_io.hpp"

namespace fmeter {
namespace {

// --- wire format fuzzing -------------------------------------------------------

std::string random_bytes(util::Rng& rng, std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.below(256)));
  }
  return out;
}

TEST(Robustness, SnapshotParserSurvivesRandomBytes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string junk = random_bytes(rng, rng.below(200));
    try {
      const auto snap = trace::CounterSnapshot::deserialize(junk);
      // Accidentally-valid input must still be internally consistent.
      EXPECT_LE(snap.nonzero(), snap.size());
    } catch (const std::invalid_argument&) {
      // expected for almost all inputs
    }
  }
}

TEST(Robustness, CorpusParserSurvivesRandomBytes) {
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk = random_bytes(rng, rng.below(300));
    if (rng.bernoulli(0.3)) junk = "fmeter-corpus v1\n" + junk;  // valid magic
    std::istringstream in(junk);
    try {
      const auto corpus = vsm::read_corpus(in);
      for (const auto& doc : corpus.documents()) {
        EXPECT_GE(doc.total(), doc.distinct_terms());
      }
    } catch (const std::invalid_argument&) {
      // expected
    }
  }
}

TEST(Robustness, CorpusParserSurvivesTruncationAtEveryPoint) {
  vsm::Corpus corpus;
  corpus.add(vsm::CountDocument::from_counts({{1, 5}, {9, 2}}, "x", 1.0));
  corpus.add(vsm::CountDocument::from_counts({{3, 7}}, "y", 2.0));
  std::ostringstream out;
  vsm::write_corpus(out, corpus);
  const std::string full = out.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    try {
      vsm::read_corpus(in);
    } catch (const std::invalid_argument&) {
      // fine — must throw, not crash or hang
    }
  }
}

// --- degenerate ML inputs ------------------------------------------------------

TEST(Robustness, SvmWithContradictoryPointsTerminates) {
  // Identical coordinates, opposite labels: not separable at any C.
  ml::Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.push_back({vsm::SparseVector::from_entries({{0, 1.0}}), +1});
    data.push_back({vsm::SparseVector::from_entries({{0, 1.0}}), -1});
  }
  ml::SvmConfig config;
  config.c = 100.0;
  const auto model = ml::train_svm(data, config);  // must converge/terminate
  // Either answer is defensible; prediction must at least be stable.
  const int first = model.predict(data[0].x);
  EXPECT_EQ(model.predict(data[1].x), first);
}

TEST(Robustness, KMeansWithIdenticalPoints) {
  std::vector<vsm::SparseVector> points(
      6, vsm::SparseVector::from_entries({{0, 1.0}}));
  ml::KMeansConfig config;
  config.k = 3;
  const auto result = ml::KMeans(config).fit(points);
  EXPECT_EQ(result.assignments.size(), 6u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(Robustness, HierarchicalWithDuplicatePoints) {
  std::vector<vsm::SparseVector> points(
      5, vsm::SparseVector::from_entries({{2, 3.0}}));
  const auto tree = ml::agglomerate(points);
  EXPECT_EQ(tree.merges.size(), 4u);
  for (const auto& merge : tree.merges) EXPECT_EQ(merge.height, 0.0);
}

TEST(Robustness, DecisionTreeAllSameFeatureValues) {
  // No candidate threshold exists: must produce a single majority leaf.
  ml::Dataset data;
  for (int i = 0; i < 8; ++i) {
    data.push_back({vsm::SparseVector::from_entries({{0, 1.0}}),
                    i < 5 ? +1 : -1});
  }
  const auto tree = ml::train_decision_tree(data);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(data[0].x), +1);
}

TEST(Robustness, TfIdfSingleDocumentCorpus) {
  vsm::Corpus corpus;
  corpus.add(vsm::CountDocument::from_counts({{0, 3}, {1, 1}}, "solo"));
  vsm::TfIdfModel model;
  const auto vectors = model.fit_transform(corpus);
  // Every term is in |D| = 1 of 1 documents: idf = 0, vector collapses.
  EXPECT_TRUE(vectors[0].empty());
  // The smoothed variant keeps the signal alive.
  vsm::TfIdfOptions smooth;
  smooth.smooth_idf = true;
  vsm::TfIdfModel smooth_model(smooth);
  EXPECT_FALSE(smooth_model.fit_transform(corpus)[0].empty());
}

// --- tracer misuse -------------------------------------------------------------

TEST(Robustness, CollectorSurvivesTracerReset) {
  core::SystemConfig config;
  config.kernel.symbols.total_functions = 900;
  config.kernel.num_cpus = 1;
  core::MonitoredSystem system(config);
  core::SignatureCollector collector(system.debugfs());
  auto& kernel = system.kernel();

  collector.begin_interval();
  for (int i = 0; i < 100; ++i) kernel.invoke(kernel.cpu(0), 1);
  system.fmeter().reset();  // operator zeroes counters mid-interval
  for (int i = 0; i < 5; ++i) kernel.invoke(kernel.cpu(0), 2);
  const auto doc = collector.end_interval("reset", 1.0);
  // Saturating diff: no underflow wrap, partial post-reset counts survive.
  EXPECT_EQ(doc.count_of(1), 0u);
  EXPECT_EQ(doc.count_of(2), 5u);
}

TEST(Robustness, DebugfsHandlerThrowPropagates) {
  trace::DebugFs fs;
  fs.register_file("broken", []() -> std::string {
    throw std::runtime_error("backend gone");
  });
  EXPECT_THROW(fs.read("broken"), std::runtime_error);
}

}  // namespace
}  // namespace fmeter
