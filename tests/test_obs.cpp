// Observability layer: histogram bucket math, merge equivalence, quantile
// error bounds, concurrent recording (this binary is part of the TSan CI
// job), registry re-registration semantics, collector hooks, stage-span
// nesting from pool workers, and exporter well-formedness.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/task_pool.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fmeter::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(Histogram, UnitRegionBucketsAreExact) {
  // Below 2 * kSubBuckets every value has a width-1 bucket: index == value.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower_bound(v), v);
  }
}

TEST(Histogram, BucketIndexIsMonotonicAndConsistentWithLowerBound) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // just below the next bucket's edge must still map to this bucket.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    const std::uint64_t next = Histogram::bucket_lower_bound(i + 1);
    ASSERT_LT(lo, next);
    EXPECT_EQ(Histogram::bucket_index(lo), i);
    EXPECT_EQ(Histogram::bucket_index(next - 1), i);
  }
}

TEST(Histogram, OctaveBoundariesLandInTheRightBucket) {
  // Powers of two start a fresh sub-bucket run: 2^e maps to the first
  // bucket of octave e.
  for (int e = Histogram::kSubBucketBits; e < Histogram::kMaxExponent; ++e) {
    const std::uint64_t v = std::uint64_t{1} << e;
    const std::size_t index = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower_bound(index), v);
  }
}

TEST(Histogram, HugeValuesClampIntoTheLastBucket) {
  const std::size_t last = Histogram::kBucketCount - 1;
  EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << Histogram::kMaxExponent),
            last);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), last);
}

TEST(Histogram, BucketWidthBoundsTheRelativeError) {
  // Reporting any value from its bucket's lower edge errs by less than
  // 1/kSubBuckets of the true value (the 1.6% contract).
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 10000; ++trial) {
    const std::uint64_t v =
        (rng() % ((std::uint64_t{1} << Histogram::kMaxExponent) - 1)) + 1;
    const std::uint64_t lo =
        Histogram::bucket_lower_bound(Histogram::bucket_index(v));
    ASSERT_LE(lo, v);
    const double rel = static_cast<double>(v - lo) / static_cast<double>(v);
    EXPECT_LT(rel, 1.0 / Histogram::kSubBuckets + 1e-12) << "value " << v;
  }
}

// ---------------------------------------------------------------------------
// Snapshot semantics
// ---------------------------------------------------------------------------

TEST(Histogram, SnapshotCountsSumMinMaxMean) {
  Histogram h(1);
  for (const std::uint64_t v : {5u, 10u, 10u, 63u}) h.record(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 88u);
  EXPECT_EQ(snap.min(), 5u);   // unit region: exact
  EXPECT_EQ(snap.max(), 63u);  // unit region: exact
  EXPECT_DOUBLE_EQ(snap.mean(), 22.0);
}

TEST(Histogram, EmptySnapshotIsZeroEverywhere) {
  const auto snap = Histogram(1).snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.min(), 0u);
  EXPECT_EQ(snap.max(), 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

TEST(Histogram, MergeEqualsSingleStream) {
  // Recording a stream into one histogram == recording its halves into two
  // and merging the snapshots, bucket for bucket.
  Histogram whole(1), left(1), right(1);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng() % 1'000'000;
    whole.record(v);
    (i % 2 == 0 ? left : right).record(v);
  }
  auto merged = left.snapshot();
  merged += right.snapshot();
  const auto expected = whole.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(Histogram, QuantileWithinBucketErrorBound) {
  // Against a known uniform distribution the histogram quantile must land
  // within one bucket width (1/kSubBuckets relative) of the true quantile.
  Histogram h(1);
  constexpr std::uint64_t kMaxValue = 1'000'000;
  std::mt19937_64 rng(3);
  std::vector<std::uint64_t> values;
  values.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng() % kMaxValue;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const auto snap = h.snapshot();
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    const double approx = snap.quantile(q);
    EXPECT_NEAR(approx, exact, exact / Histogram::kSubBuckets + 1.0)
        << "q = " << q;
  }
}

TEST(Histogram, SingleValueQuantileIsItsBucketEdge) {
  Histogram h(1);
  h.record(5);
  const auto snap = h.snapshot();
  // One recording of 5: every quantile reports 5 exactly (unit bucket).
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 5.0);
}

TEST(Histogram, ClampedOutliersKeepSumConsistentWithMax) {
  // A value beyond the top bucket clamps for the sum as well as the bucket,
  // so the exported mean can never exceed the bucketed max.
  Histogram h(1);
  h.record(~std::uint64_t{0});
  const auto snap = h.snapshot();
  const std::uint64_t ceiling =
      (std::uint64_t{1} << Histogram::kMaxExponent) - 1;
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, ceiling);
  EXPECT_EQ(snap.max(), ceiling);
  EXPECT_LE(snap.mean(), static_cast<double>(snap.max()));
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  // Hammer one histogram from several threads; the merged snapshot must
  // account for every recording (TSan validates the relaxed-atomic claim).
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> expected_sum{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      std::uint64_t local_sum = 0;
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t v = (t * 1000) + (i % 997);
        h.record(v);
        local_sum += v;
      }
      expected_sum.fetch_add(local_sum, std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& worker : workers) worker.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum, expected_sum.load());
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ReRegistrationReturnsTheSameObject) {
  MetricsRegistry registry;
  auto& a = registry.counter("fmeter_test_events_total", "first help");
  a.inc(3);
  auto& b = registry.counter("fmeter_test_events_total", "ignored");
  EXPECT_EQ(&a, &b);           // same stable reference...
  EXPECT_EQ(b.value(), 3u);    // ...accumulated value intact
  const auto snap = registry.scrape();
  ASSERT_NE(snap.counter("fmeter_test_events_total"), nullptr);
  EXPECT_EQ(snap.counter("fmeter_test_events_total")->help, "first help");
}

TEST(MetricsRegistry, ReferencesSurviveManyLaterRegistrations) {
  // The registration contract: handed-out references stay valid however
  // many metrics register afterwards (entry storage must be stable across
  // the registry's internal growth).
  MetricsRegistry registry;
  auto& first = registry.counter("fmeter_test_first_total");
  for (int i = 0; i < 256; ++i) {
    registry.counter("fmeter_test_filler_" + std::to_string(i) + "_total");
  }
  first.inc(5);
  EXPECT_EQ(registry.scrape().counter("fmeter_test_first_total")->value, 5u);
}

TEST(MetricsRegistry, KindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("fmeter_test_value");
  EXPECT_THROW(registry.gauge("fmeter_test_value"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("fmeter_test_value"), std::invalid_argument);
}

TEST(MetricsRegistry, ScrapeIsNameSorted) {
  MetricsRegistry registry;
  registry.counter("zzz_total");
  registry.counter("aaa_total");
  registry.counter("mmm_total");
  const auto snap = registry.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "aaa_total");
  EXPECT_EQ(snap.counters[2].name, "zzz_total");
}

TEST(MetricsRegistry, CollectorsRunAtScrapeAndDeregisterCleanly) {
  MetricsRegistry registry;
  auto& gauge = registry.gauge("fmeter_test_live");
  int pulls = 0;
  const std::size_t token = registry.add_collector([&] {
    ++pulls;
    gauge.set(static_cast<double>(pulls));
  });
  EXPECT_DOUBLE_EQ(registry.scrape().gauge("fmeter_test_live")->value, 1.0);
  EXPECT_DOUBLE_EQ(registry.scrape().gauge("fmeter_test_live")->value, 2.0);
  registry.remove_collector(token);
  (void)registry.scrape();
  EXPECT_EQ(pulls, 2);
}

TEST(MetricsRegistry, CollectorMayRegisterMetricsWithoutDeadlock) {
  // Collectors run outside the registry mutex, so a collector that lazily
  // registers (the TaskPool pattern) must not self-deadlock.
  MetricsRegistry registry;
  const std::size_t token = registry.add_collector(
      [&] { registry.gauge("fmeter_test_lazy").set(1.0); });
  const auto snap = registry.scrape();
  ASSERT_NE(snap.gauge("fmeter_test_lazy"), nullptr);
  registry.remove_collector(token);
}

TEST(MetricsRegistry, RemoveCollectorWaitsForInFlightScrape) {
  // remove_collector must not return while a scrape is inside the
  // collector — that guarantee is what lets a TaskPool destroy itself
  // right after deregistering.
  MetricsRegistry registry;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> collector_finished{false};
  const std::size_t token = registry.add_collector([&] {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    collector_finished.store(true, std::memory_order_release);
  });
  std::thread scraper([&] { (void)registry.scrape(); });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::atomic<bool> saw_finished_at_removal{false};
  std::thread remover([&] {
    registry.remove_collector(token);
    saw_finished_at_removal.store(
        collector_finished.load(std::memory_order_acquire),
        std::memory_order_release);
  });
  // Let the remover reach its wait, then release the stalled collector.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  remover.join();
  scraper.join();
  // Whenever remove_collector returned, the in-flight invocation was done.
  EXPECT_TRUE(saw_finished_at_removal.load());
  // And the collector never runs again.
  (void)registry.scrape();
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      // All threads race to register the same names, then record.
      auto& counter = registry.counter("fmeter_test_shared_total");
      auto& histogram = registry.histogram("fmeter_test_shared_ns");
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        histogram.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto snap = registry.scrape();
  EXPECT_EQ(snap.counter("fmeter_test_shared_total")->value,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snap.histogram("fmeter_test_shared_ns")->snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// ---------------------------------------------------------------------------
// Stage tracer
// ---------------------------------------------------------------------------

TEST(StageTracer, SpansLandInTheirStageHistogram) {
  MetricsRegistry registry;
  StageTracer tracer(registry);
  tracer.record(Stage::kShardProbe, 1500);
  tracer.record(Stage::kShardProbe, 2500);
  tracer.record(Stage::kMerge, 100);
  const auto snap = registry.scrape();
  const auto* probe = snap.histogram("fmeter_stage_shard_probe_ns");
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->snapshot.count, 2u);
  EXPECT_EQ(snap.counter("fmeter_stage_shard_probe_spans_total")->value, 2u);
  EXPECT_EQ(snap.counter("fmeter_stage_merge_spans_total")->value, 1u);
  EXPECT_EQ(snap.counter("fmeter_stage_dispatch_spans_total")->value, 0u);
}

TEST(StageTracer, EveryStageHasANameAndRegisteredMetrics) {
  MetricsRegistry registry;
  StageTracer tracer(registry);
  const auto snap = registry.scrape();
  for (int i = 0; i < kStageCount; ++i) {
    const std::string name = stage_name(static_cast<Stage>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(snap.histogram("fmeter_stage_" + name + "_ns"), nullptr);
    EXPECT_NE(snap.counter("fmeter_stage_" + name + "_spans_total"), nullptr);
  }
}

TEST(StageTracer, SpansNestAndUnwindDepth) {
  MetricsRegistry registry;
  StageTracer tracer(registry);
  EXPECT_EQ(StageTracer::thread_depth(), 0);
  {
    StageSpan outer(Stage::kDispatch, tracer);
    EXPECT_EQ(StageTracer::thread_depth(), 1);
    {
      StageSpan inner(Stage::kShardProbe, tracer);
      EXPECT_EQ(StageTracer::thread_depth(), 2);
    }
    EXPECT_EQ(StageTracer::thread_depth(), 1);
  }
  EXPECT_EQ(StageTracer::thread_depth(), 0);
  const auto snap = registry.scrape();
  EXPECT_EQ(snap.counter("fmeter_stage_dispatch_spans_total")->value, 1u);
  EXPECT_EQ(snap.counter("fmeter_stage_shard_probe_spans_total")->value, 1u);
}

TEST(StageTracer, SpansFromPoolWorkersAreIndependentPerThread) {
  // Depth is thread-local: spans opened on pool workers neither see nor
  // disturb the submitting thread's depth, and recordings all merge into
  // the same histograms.
  MetricsRegistry registry;
  StageTracer tracer(registry);
  exec::TaskPool pool(3);
  constexpr int kTasks = 24;
  std::vector<std::future<int>> depths;
  depths.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    depths.push_back(pool.submit([&tracer] {
      StageSpan span(Stage::kRescore, tracer);
      StageSpan nested(Stage::kMerge, tracer);
      return StageTracer::thread_depth();
    }));
  }
  for (auto& depth : depths) EXPECT_EQ(depth.get(), 2);
  EXPECT_EQ(StageTracer::thread_depth(), 0);  // submitter never entered one
  const auto snap = registry.scrape();
  EXPECT_EQ(snap.counter("fmeter_stage_rescore_spans_total")->value,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.histogram("fmeter_stage_merge_ns")->snapshot.count,
            static_cast<std::uint64_t>(kTasks));
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Exporters, PrometheusTextCarriesEveryMetric) {
  MetricsRegistry registry;
  registry.counter("fmeter_test_events_total", "events").inc(7);
  registry.gauge("fmeter_test_depth", "queue depth").set(3.5);
  auto& h = registry.histogram("fmeter_test_latency_ns", "latency");
  h.record(1'000);
  h.record(2'000'000);
  const std::string text = to_prometheus(registry.scrape());
  EXPECT_NE(text.find("# TYPE fmeter_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fmeter_test_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("fmeter_test_depth 3.5"), std::string::npos);
  // Histograms export in microseconds under the _us name.
  EXPECT_NE(text.find("fmeter_test_latency_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(text.find("fmeter_test_latency_ns"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Exporters, JsonIsWellFormedAndCarriesQuantiles) {
  MetricsRegistry registry;
  registry.counter("fmeter_test_events_total").inc(1);
  auto& h = registry.histogram("fmeter_test_latency_ns");
  for (int i = 1; i <= 100; ++i) h.record(i * 1000ull);  // 1..100 us
  const std::string json = to_json(registry.scrape());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"fmeter_test_events_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"fmeter_test_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
}

}  // namespace
}  // namespace fmeter::obs
