// DurableDatabase battery (fmeter/durable_database.hpp) — the durability
// contract under test:
//
//   * a batch whose commit point passed (journal fsync under kEachRecord,
//     sync()/checkpoint() under kNone) survives ANY later crash;
//   * a batch interrupted mid-append vanishes atomically;
//   * the directory is always openable after a crash;
//   * the recovered database answers bit-identically to a fresh bulk build
//     of exactly the recovered batches.
//
// The crash-matrix test enforces this by killing a FaultInjectingEnv at
// EVERY mutating operation of a full lifecycle (open, batches, checkpoint,
// more batches) with torn writes enabled, under both crash models, then
// reopening and checking the contract. The concurrent append/checkpoint
// test runs under the TSan CI job.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fmeter/durable_database.hpp"
#include "fmeter/live_database.hpp"
#include "io/env.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

using io::FaultInjectingEnv;
using io::InMemoryEnv;
using io::IoError;

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = 1 + rng.below(max_nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

struct Batch {
  std::vector<vsm::SparseVector> signatures;
  std::vector<std::string> labels;
};

/// Deterministic batches; labels encode (batch, doc) so the recovered
/// prefix is identifiable from the labels alone.
std::vector<Batch> make_batches(std::size_t count, std::size_t docs_each,
                                std::uint64_t seed = 0xd17a) {
  util::Rng rng(seed);
  std::vector<Batch> batches(count);
  for (std::size_t b = 0; b < count; ++b) {
    for (std::size_t d = 0; d < docs_each; ++d) {
      batches[b].signatures.push_back(random_sparse(rng, 64, 10));
      batches[b].labels.push_back("batch-" + std::to_string(b) + "-doc-" +
                                  std::to_string(d));
    }
  }
  return batches;
}

SignatureDatabase build_reference(const std::vector<Batch>& batches,
                                  std::size_t prefix, std::size_t shards) {
  SignatureDatabase db(shards);
  for (std::size_t b = 0; b < prefix; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }
  return db;
}

/// Bit-identical search results between the recovered database and a fresh
/// bulk build of the same batches — the "recovery loses nothing and
/// invents nothing" check.
void expect_equivalent(const SignatureDatabase& got,
                       const SignatureDatabase& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t id = 0; id < want.size(); ++id) {
    ASSERT_EQ(got.label(id), want.label(id)) << context << " id " << id;
    ASSERT_TRUE(got.signature(id) == want.signature(id))
        << context << " id " << id;
  }
  util::Rng rng(0x9e17);
  for (int q = 0; q < 4; ++q) {
    const auto query = random_sparse(rng, 64, 10);
    const auto got_hits = got.search(query, 5);
    const auto want_hits = want.search(query, 5);
    ASSERT_EQ(got_hits.size(), want_hits.size()) << context << " q " << q;
    for (std::size_t r = 0; r < want_hits.size(); ++r) {
      EXPECT_EQ(got_hits[r].id, want_hits[r].id) << context << " rank " << r;
      EXPECT_EQ(got_hits[r].score, want_hits[r].score)
          << context << " rank " << r;
    }
  }
}

/// How many whole batches the recovered database holds; fails the test if
/// its contents are not an exact batch-prefix of `batches`.
std::size_t recovered_prefix(const SignatureDatabase& db,
                             const std::vector<Batch>& batches,
                             const std::string& context) {
  const std::size_t docs_each = batches.front().labels.size();
  EXPECT_EQ(db.size() % docs_each, 0u)
      << context << ": a torn batch was half-applied";
  const std::size_t prefix = db.size() / docs_each;
  EXPECT_LE(prefix, batches.size()) << context;
  std::size_t id = 0;
  for (std::size_t b = 0; b < prefix; ++b) {
    for (std::size_t d = 0; d < docs_each; ++d, ++id) {
      EXPECT_EQ(db.label(id), batches[b].labels[d]) << context;
    }
  }
  return prefix;
}

// ---------------------------------------------------------------------------
// Plain lifecycle
// ---------------------------------------------------------------------------

TEST(DurableDatabase, FreshOpenIngestReopenReplays) {
  InMemoryEnv env;
  const auto batches = make_batches(3, 4);
  {
    DurableDatabase db(env, "arch");
    EXPECT_TRUE(db.recovery().created);
    EXPECT_EQ(db.epoch(), 0u);
    for (const Batch& b : batches) db.add_batch(b.signatures, b.labels);
    EXPECT_EQ(db.db().size(), 12u);
  }
  DurableDatabase reopened(env, "arch");
  EXPECT_FALSE(reopened.recovery().created);
  EXPECT_FALSE(reopened.recovery().snapshot_loaded);  // no checkpoint yet
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 3u);
  EXPECT_FALSE(reopened.recovery().journal_truncated);
  expect_equivalent(reopened.db(), build_reference(batches, 3, 1),
                    "journal-only reopen");
}

TEST(DurableDatabase, CheckpointRotatesAndReopensFromSnapshot) {
  InMemoryEnv env;
  const auto batches = make_batches(4, 3);
  {
    DurableDatabase db(env, "arch", {.num_shards = 2});
    db.add_batch(batches[0].signatures, batches[0].labels);
    db.add_batch(batches[1].signatures, batches[1].labels);
    db.checkpoint();
    EXPECT_EQ(db.epoch(), 1u);
    db.add_batch(batches[2].signatures, batches[2].labels);
    db.add_batch(batches[3].signatures, batches[3].labels);
  }
  // The directory holds exactly the manifest + current pair.
  auto names = env.list_dir("arch");
  EXPECT_EQ(names, (std::vector<std::string>{"MANIFEST", "journal-000001.wal",
                                             "snapshot-000001"}));

  DurableDatabase reopened(env, "arch", {.num_shards = 2});
  EXPECT_TRUE(reopened.recovery().snapshot_loaded);
  EXPECT_EQ(reopened.recovery().epoch, 1u);
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 2u);
  expect_equivalent(reopened.db(), build_reference(batches, 4, 2),
                    "snapshot+journal reopen");

  // A second checkpoint directly after reopen folds the journal in.
  reopened.checkpoint();
  EXPECT_EQ(reopened.epoch(), 2u);
  DurableDatabase again(env, "arch", {.num_shards = 2});
  EXPECT_EQ(again.recovery().journal_records_replayed, 0u);
  expect_equivalent(again.db(), build_reference(batches, 4, 2),
                    "post-second-checkpoint");
}

TEST(DurableDatabase, SyncIsTheCommitPointUnderAsyncPolicy) {
  InMemoryEnv env;
  const auto batches = make_batches(3, 2);
  DurableOptions options;
  options.sync_policy = io::journal::SyncPolicy::kNone;
  DurableDatabase db(env, "arch", options);
  db.add_batch(batches[0].signatures, batches[0].labels);
  db.sync();  // commit point for batch 0
  db.add_batch(batches[1].signatures, batches[1].labels);
  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);

  DurableDatabase reopened(env, "arch", options);
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 1u);
  expect_equivalent(reopened.db(), build_reference(batches, 1, 1),
                    "async: only the synced batch survives");
}

TEST(DurableDatabase, UnjournaledModeDependsEntirelyOnCheckpoint) {
  InMemoryEnv env;
  const auto batches = make_batches(2, 3);
  DurableOptions off;
  off.journaled = false;
  DurableDatabase db(env, "arch", off);
  db.add_batch(batches[0].signatures, batches[0].labels);
  db.checkpoint();
  db.add_batch(batches[1].signatures, batches[1].labels);  // RAM only
  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);

  DurableDatabase reopened(env, "arch", off);
  EXPECT_TRUE(reopened.recovery().snapshot_loaded);
  expect_equivalent(reopened.db(), build_reference(batches, 1, 1),
                    "journal off: checkpointed batch only");
}

TEST(DurableDatabase, InvalidBatchRejectedBeforeJournalAndRam) {
  InMemoryEnv env;
  DurableDatabase db(env, "arch");
  const auto batches = make_batches(1, 2);
  db.add_batch(batches[0].signatures, batches[0].labels);
  const std::uint64_t journal_size = env.file_size("arch/journal-000000.wal");

  std::vector<vsm::SparseVector> bad = {vsm::SparseVector::from_entries(
      {{0, std::numeric_limits<double>::quiet_NaN()}})};
  EXPECT_THROW(db.add_batch(bad, {"poison"}), std::invalid_argument);
  EXPECT_THROW(db.add_batch(batches[0].signatures, {}),
               std::invalid_argument);

  // Neither the journal nor the in-memory database moved.
  EXPECT_EQ(env.file_size("arch/journal-000000.wal"), journal_size);
  EXPECT_EQ(db.db().size(), 2u);
  DurableDatabase reopened(env, "arch");
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 1u);
}

TEST(DurableDatabase, SweepsCrashLeftovers) {
  InMemoryEnv env;
  {
    DurableDatabase db(env, "arch");
    const auto batches = make_batches(1, 2);
    db.add_batch(batches[0].signatures, batches[0].labels);
  }
  // Plant debris a torn checkpoint could leave: a temp file and a
  // next-epoch pair the manifest never adopted.
  env.new_writable_file("arch/snapshot-000001.tmp", true)->sync();
  env.new_writable_file("arch/snapshot-000001", true)->sync();
  env.new_writable_file("arch/journal-000001.wal", true)->sync();
  env.sync_dir("arch");

  DurableDatabase reopened(env, "arch");
  EXPECT_EQ(reopened.recovery().removed_files.size(), 3u);
  EXPECT_EQ(env.list_dir("arch"),
            (std::vector<std::string>{"MANIFEST", "journal-000000.wal"}));
  EXPECT_EQ(reopened.db().size(), 2u);
}

TEST(DurableDatabase, CorruptManifestRefusedLoudly) {
  InMemoryEnv env;
  {
    DurableDatabase db(env, "arch");
  }
  std::string raw = env.read_file("arch/MANIFEST");
  raw[raw.size() / 2] = static_cast<char>(raw[raw.size() / 2] ^ 0x01);
  auto file = env.new_writable_file("arch/MANIFEST", /*truncate=*/true);
  file->append(std::string_view(raw));
  file->sync();
  // Silently starting a fresh database over live data would be the one
  // unforgivable recovery behavior.
  EXPECT_THROW(DurableDatabase(env, "arch"), DurabilityError);
}

// ---------------------------------------------------------------------------
// The crash matrix
// ---------------------------------------------------------------------------

/// The lifecycle whose every fault point the matrix kills: open fresh,
/// three committed batches, a checkpoint, two more committed batches.
/// Returns how many batches had passed their commit point (add_batch
/// returned under kEachRecord) before the fault hit.
std::size_t run_lifecycle(io::Env& env, const std::vector<Batch>& batches) {
  std::size_t committed = 0;
  DurableDatabase db(env, "arch", {.num_shards = 2});
  for (std::size_t b = 0; b < 3; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
    ++committed;
  }
  db.checkpoint();
  for (std::size_t b = 3; b < 5; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
    ++committed;
  }
  return committed;
}

TEST(DurableDatabase, CrashMatrixEveryFaultPointBothCrashModes) {
  const auto batches = make_batches(5, 3);

  FaultInjectingEnv counter;
  ASSERT_EQ(run_lifecycle(counter, batches), 5u);
  const std::uint64_t total_ops = counter.ops_seen();
  ASSERT_GT(total_ops, 20u) << "lifecycle too small to be a real matrix";

  std::size_t faulted_runs = 0;
  for (std::uint64_t n = 0; n < total_ops; ++n) {
    for (const auto mode : {InMemoryEnv::CrashMode::kDropUnsynced,
                            InMemoryEnv::CrashMode::kPersistEverything}) {
      const std::string context = "op " + std::to_string(n) +
                                  (mode == InMemoryEnv::CrashMode::kDropUnsynced
                                       ? " drop-unsynced"
                                       : " persist-everything");
      FaultInjectingEnv env;
      env.set_tear(FaultInjectingEnv::TearMode::kHalf);
      env.fail_at_op(n);
      std::size_t committed = 0;
      try {
        committed = run_lifecycle(env, batches);
        FAIL() << context << ": lifecycle completed without a fault";
      } catch (const IoError&) {
        ++faulted_runs;
      } catch (const index::snapshot::SnapshotError&) {
        ++faulted_runs;  // checkpoint wraps snapshot-write IoErrors
      }
      env.disarm();
      env.crash(mode);

      // Contract clause 3: ALWAYS openable. No exception may escape here.
      DurableDatabase recovered(env, "arch", {.num_shards = 2});

      // Clauses 1+2: the recovered contents are a whole-batch prefix of
      // the attempted sequence, at least as long as the committed count.
      const std::size_t prefix =
          recovered_prefix(recovered.db(), batches, context);
      EXPECT_GE(prefix, committed) << context << ": committed batch lost";

      // Clause 4: bit-identical to a fresh bulk build of that prefix.
      expect_equivalent(recovered.db(),
                        build_reference(batches, prefix, 2), context);

      // And the recovered database still ingests + checkpoints.
      recovered.add_batch(batches[0].signatures, batches[0].labels);
      recovered.checkpoint();
      EXPECT_EQ(recovered.db().size(), (prefix + 1) * 3) << context;
    }
  }
  EXPECT_EQ(faulted_runs, 2 * total_ops);
}

TEST(DurableDatabase, RecoveryItselfSurvivesCrashes) {
  // Crash-during-recovery: prepare a directory whose journal has a torn
  // tail, then kill the reopen at every fault point. Whatever happens, the
  // directory must stay openable and the committed batches intact.
  const auto batches = make_batches(3, 3);
  const auto prepare = [&](FaultInjectingEnv& env) {
    {
      DurableDatabase db(env, "arch", {.num_shards = 2});
      db.add_batch(batches[0].signatures, batches[0].labels);
      db.add_batch(batches[1].signatures, batches[1].labels);
    }
    // Torn tail: append half a record's worth of garbage to the journal.
    auto file = env.new_writable_file("arch/journal-000000.wal",
                                      /*truncate=*/false);
    file->append(std::string_view("\x40\x00\x00", 3));  // cut length prefix
    file->sync();
    env.reset_ops();
  };

  FaultInjectingEnv counter;
  prepare(counter);
  { DurableDatabase probe(counter, "arch", {.num_shards = 2}); }
  const std::uint64_t recovery_ops = counter.ops_seen();
  ASSERT_GT(recovery_ops, 0u);

  for (std::uint64_t n = 0; n < recovery_ops; ++n) {
    const std::string context = "recovery op " + std::to_string(n);
    FaultInjectingEnv env;
    prepare(env);
    env.fail_at_op(n);
    try {
      DurableDatabase db(env, "arch", {.num_shards = 2});
    } catch (const IoError&) {
    }
    env.disarm();
    env.crash(InMemoryEnv::CrashMode::kDropUnsynced);

    DurableDatabase recovered(env, "arch", {.num_shards = 2});
    EXPECT_EQ(recovered.recovery().journal_records_replayed, 2u) << context;
    expect_equivalent(recovered.db(), build_reference(batches, 2, 2), context);
  }
}

// ---------------------------------------------------------------------------
// The live epoch-swap crash matrix (ISSUE 10)
// ---------------------------------------------------------------------------

/// Bit-identical results between a recovered live archive and a fresh bulk
/// build — the live twin of expect_equivalent.
void expect_live_equivalent(const LiveDatabase::Snapshot& got,
                            const SignatureDatabase& want,
                            const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t id = 0; id < want.size(); ++id) {
    ASSERT_EQ(got.label(id), want.label(id)) << context << " id " << id;
    ASSERT_TRUE(got.signature(id) == want.signature(id))
        << context << " id " << id;
  }
  util::Rng rng(0x9e17);
  for (int q = 0; q < 4; ++q) {
    const auto query = random_sparse(rng, 64, 10);
    const auto got_hits = got.search(query, 5);
    const auto want_hits = want.search(query, 5);
    ASSERT_EQ(got_hits.size(), want_hits.size()) << context << " q " << q;
    for (std::size_t r = 0; r < want_hits.size(); ++r) {
      EXPECT_EQ(got_hits[r].id, want_hits[r].id) << context << " rank " << r;
      EXPECT_EQ(got_hits[r].score, want_hits[r].score)
          << context << " rank " << r;
    }
  }
}

std::size_t live_recovered_prefix(const LiveDatabase::Snapshot& got,
                                  const std::vector<Batch>& batches,
                                  const std::string& context) {
  const std::size_t docs_each = batches.front().labels.size();
  EXPECT_EQ(got.size() % docs_each, 0u)
      << context << ": a torn batch was half-applied";
  const std::size_t prefix = got.size() / docs_each;
  EXPECT_LE(prefix, batches.size()) << context;
  std::size_t id = 0;
  for (std::size_t b = 0; b < prefix; ++b) {
    for (std::size_t d = 0; d < docs_each; ++d, ++id) {
      EXPECT_EQ(got.label(id), batches[b].labels[d]) << context;
    }
  }
  return prefix;
}

/// The live lifecycle whose every fault point the matrix kills: open
/// fresh, two committed batches, a re-freeze whose capture is raced by a
/// batch sealed mid-fold (the survivor re-journal path), one more batch,
/// and a second re-freeze. `committed` is updated as each add_batch
/// returns — under kNone + sync_each_epoch that return IS the commit
/// point — so the caller knows the durability floor even when a fault
/// unwinds the lifecycle.
void run_live_lifecycle(io::Env& env, const std::vector<Batch>& batches,
                        std::size_t& committed) {
  LiveOptions options;
  options.num_shards = 2;
  options.background_refreeze = false;
  LiveDatabase* handle = nullptr;
  bool sealed_mid_fold = false;
  options.after_refreeze_capture = [&] {
    if (sealed_mid_fold) return;
    sealed_mid_fold = true;
    handle->add_batch(batches[2].signatures, batches[2].labels);
    ++committed;
  };
  LiveDatabase db(env, "live", options);
  handle = &db;
  for (std::size_t b = 0; b < 2; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
    ++committed;
  }
  db.refreeze_now();  // folds 0+1, re-journals the mid-fold batch 2
  db.add_batch(batches[3].signatures, batches[3].labels);
  ++committed;
  db.refreeze_now();  // folds 2+3
}

TEST(LiveDatabase, EpochSwapCrashMatrixEveryFaultPointBothCrashModes) {
  const auto batches = make_batches(4, 3);

  FaultInjectingEnv counter;
  std::size_t clean_committed = 0;
  run_live_lifecycle(counter, batches, clean_committed);
  ASSERT_EQ(clean_committed, 4u);
  const std::uint64_t total_ops = counter.ops_seen();
  ASSERT_GT(total_ops, 20u) << "lifecycle too small to be a real matrix";

  std::size_t faulted_runs = 0;
  std::size_t tolerated_runs = 0;
  for (std::uint64_t n = 0; n < total_ops; ++n) {
    for (const auto mode : {InMemoryEnv::CrashMode::kDropUnsynced,
                            InMemoryEnv::CrashMode::kPersistEverything}) {
      const std::string context = "live op " + std::to_string(n) +
                                  (mode == InMemoryEnv::CrashMode::kDropUnsynced
                                       ? " drop-unsynced"
                                       : " persist-everything");
      FaultInjectingEnv env;
      env.set_tear(FaultInjectingEnv::TearMode::kHalf);
      env.fail_at_op(n);
      std::size_t committed = 0;
      try {
        run_live_lifecycle(env, batches, committed);
        // A fault in the post-commit retirement section (deleting the old
        // epoch's files) is deliberately tolerated: the swap has already
        // committed, so ingest must not fail over a leftover file the
        // next open sweeps anyway. Every other fault point must throw.
        ++tolerated_runs;
        EXPECT_EQ(committed, 4u) << context << ": swallowed pre-commit fault";
      } catch (const IoError&) {
        ++faulted_runs;
      } catch (const index::snapshot::SnapshotError&) {
        ++faulted_runs;  // re-freeze wraps snapshot-write IoErrors
      } catch (const DurabilityError&) {
        ++faulted_runs;  // poisoned commit: manifest swap died ambiguously
      }
      env.disarm();
      env.crash(mode);

      // ALWAYS openable: recovery lands on whatever epoch the manifest
      // names — the old one or the new one, never a torn mix.
      LiveOptions reopen_options;
      reopen_options.num_shards = 2;
      reopen_options.background_refreeze = false;
      LiveDatabase recovered(env, "live", reopen_options);
      EXPECT_LE(recovered.recovery().epoch, 2u) << context;

      // Committed batches survive, contents are a whole-batch prefix, and
      // the recovered archive is bit-identical to a fresh bulk build.
      const std::size_t prefix =
          live_recovered_prefix(recovered.snapshot(), batches, context);
      EXPECT_GE(prefix, committed) << context << ": committed batch lost";
      expect_live_equivalent(recovered.snapshot(),
                             build_reference(batches, prefix, 2), context);

      // And the recovered archive still ingests + re-freezes.
      recovered.add_batch(batches[0].signatures, batches[0].labels);
      recovered.refreeze_now();
      EXPECT_EQ(recovered.size(), (prefix + 1) * 3) << context;
    }
  }
  EXPECT_EQ(faulted_runs + tolerated_runs, 2 * total_ops);
  EXPECT_GT(faulted_runs, tolerated_runs)
      << "most fault points must be pre-commit";
}

// ---------------------------------------------------------------------------
// Concurrency (runs under the TSan CI job)
// ---------------------------------------------------------------------------

TEST(DurableDatabase, ConcurrentAppendAndCheckpoint) {
  InMemoryEnv env;
  const auto batches = make_batches(24, 2, 0xc0);
  DurableDatabase db(env, "arch", {.num_shards = 2});

  std::thread ingester([&] {
    for (const Batch& b : batches) db.add_batch(b.signatures, b.labels);
  });
  std::thread checkpointer([&] {
    for (int i = 0; i < 6; ++i) db.checkpoint();
  });
  std::thread syncer([&] {
    for (int i = 0; i < 10; ++i) db.sync();
  });
  ingester.join();
  checkpointer.join();
  syncer.join();

  EXPECT_EQ(db.db().size(), 48u);
  db.checkpoint();  // fold everything in, then reopen must see all of it
  DurableDatabase reopened(env, "arch", {.num_shards = 2});
  EXPECT_EQ(reopened.db().size(), 48u);
  expect_equivalent(reopened.db(), build_reference(batches, 24, 2),
                    "post-concurrency reopen");
}

}  // namespace
}  // namespace fmeter::core
