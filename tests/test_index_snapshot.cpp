// Snapshot persistence battery: round-trip bit-identity, corruption
// rejection, durability.
//
// The contract under test (index/snapshot.hpp): a saved archive restores
// without re-indexing into a database byte-for-byte equal to a fresh bulk
// build of the same documents — searches in every mode (kExact/kMaxScore/
// kAuto), at any shard count, from any freeze state of the source, return
// bit-identical results — and every corrupted input (truncated files,
// flipped bytes in each region, wrong version, foreign endianness,
// zero-length files) fails with a diagnostic SnapshotError that leaves the
// load target untouched and usable (strong guarantee). The parallel-load
// test runs under the TSan CI job (per-shard re-freeze fan-out).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "exec/task_pool.hpp"
#include "fmeter/database.hpp"
#include "fmeter/durable_database.hpp"
#include "index/inverted_index.hpp"
#include "index/snapshot.hpp"
#include "io/env.hpp"
#include "io/journal.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

namespace snap = index::snapshot;

constexpr std::size_t kShardCounts[] = {1, 2, 5};

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz,
                                bool allow_negative = false) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto term =
        static_cast<vsm::SparseVector::Index>(rng.below(dimension));
    double value = rng.uniform(0.05, 1.0);
    if (allow_negative && rng.bernoulli(0.3)) value = -value;
    entries.emplace_back(term, value);
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

/// A labeled corpus with duplicate labels and some duplicate documents —
/// the shapes an operator archive actually has.
struct TestCorpus {
  std::vector<vsm::SparseVector> signatures;
  std::vector<std::string> labels;
};

TestCorpus make_corpus(std::uint64_t seed, std::size_t docs,
                       std::uint32_t dimension = 96, std::size_t max_nnz = 12) {
  util::Rng rng(seed);
  TestCorpus corpus;
  for (std::size_t i = 0; i < docs; ++i) {
    if (i > 2 && rng.bernoulli(0.1)) {
      corpus.signatures.push_back(corpus.signatures[i - 2]);  // duplicate doc
    } else {
      corpus.signatures.push_back(
          random_sparse(rng, dimension, max_nnz, /*allow_negative=*/true));
    }
    corpus.labels.push_back("class-" + std::to_string(i % 3));
  }
  return corpus;
}

SignatureDatabase build_bulk(const TestCorpus& corpus, std::size_t shards) {
  SignatureDatabase db(shards);
  db.add_batch(corpus.signatures, corpus.labels);
  return db;
}

std::string save_to_string(const SignatureDatabase& db) {
  std::ostringstream out;
  db.save(out);
  return out.str();
}

SignatureDatabase load_from_string(const std::string& bytes,
                                   std::size_t shards_hint = 1) {
  SignatureDatabase db(shards_hint);
  std::istringstream in(bytes);
  db.load(in);
  return db;
}

/// Bit-identical hits: same ids, same labels, scores equal to the last bit.
void expect_hits_identical(const std::vector<SearchHit>& got,
                           const std::vector<SearchHit>& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].id, want[r].id) << context << " rank " << r;
    EXPECT_EQ(got[r].label, want[r].label) << context << " rank " << r;
    EXPECT_EQ(got[r].score, want[r].score) << context << " rank " << r;
  }
}

/// Full-state equality plus bit-identical searches in every execution mode.
void expect_databases_equivalent(const SignatureDatabase& loaded,
                                 const SignatureDatabase& reference,
                                 std::uint64_t query_seed,
                                 const std::string& context) {
  ASSERT_EQ(loaded.size(), reference.size()) << context;
  ASSERT_EQ(loaded.num_shards(), reference.num_shards()) << context;
  EXPECT_EQ(loaded.index().num_terms(), reference.index().num_terms())
      << context;
  EXPECT_EQ(loaded.index().num_postings(), reference.index().num_postings())
      << context;
  EXPECT_TRUE(loaded.index().frozen()) << context;
  for (std::size_t id = 0; id < reference.size(); ++id) {
    ASSERT_EQ(loaded.label(id), reference.label(id)) << context << " id " << id;
    ASSERT_TRUE(loaded.signature(id) == reference.signature(id))
        << context << " id " << id;
  }
  util::Rng rng(query_seed);
  for (int q = 0; q < 6; ++q) {
    const auto query = random_sparse(rng, 96, 12, /*allow_negative=*/true);
    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      for (const auto mode : {PruningMode::kExact, PruningMode::kMaxScore,
                              PruningMode::kAuto}) {
        const std::size_t k = 1 + static_cast<std::size_t>(q);
        expect_hits_identical(
            loaded.search(query, k, metric, ScanPolicy::kIndexed, mode),
            reference.search(query, k, metric, ScanPolicy::kIndexed, mode),
            context + " query " + std::to_string(q));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(IndexSnapshot, RoundTripBitIdenticalAcrossShardCountsAndModes) {
  const TestCorpus corpus = make_corpus(0x5a41, 120);
  for (const std::size_t shards : kShardCounts) {
    const SignatureDatabase original = build_bulk(corpus, shards);
    const std::string bytes = save_to_string(original);
    const SignatureDatabase loaded = load_from_string(bytes);
    expect_databases_equivalent(loaded, original, 0x9e1 + shards,
                                std::to_string(shards) + " shards");
    // And against the brute-force golden reference, closing the loop all
    // the way to the scan.
    util::Rng rng(0x77);
    const auto query = random_sparse(rng, 96, 12, true);
    expect_hits_identical(
        loaded.search(query, 5, SimilarityMetric::kCosine,
                      ScanPolicy::kIndexed, PruningMode::kExact),
        loaded.search(query, 5, SimilarityMetric::kCosine,
                      ScanPolicy::kBruteForce),
        "vs scan, " + std::to_string(shards) + " shards");
  }
}

TEST(IndexSnapshot, SavedBytesIndependentOfFreezeState) {
  // The forward image is written in public id order, so never-frozen,
  // fully-frozen and frozen-plus-tail sources of the same documents emit
  // byte-for-byte the same snapshot — and all of them restore to the same
  // (frozen, bulk-build-equal) database.
  const TestCorpus corpus = make_corpus(0xf0e, 90);
  const std::size_t cut = 60;  // the tail split for the frozen+tail state
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase never_frozen(shards);
    SignatureDatabase fully_frozen(shards);
    SignatureDatabase frozen_tail(shards);
    for (std::size_t i = 0; i < corpus.signatures.size(); ++i) {
      never_frozen.add(corpus.signatures[i], corpus.labels[i]);
      fully_frozen.add(corpus.signatures[i], corpus.labels[i]);
      frozen_tail.add(corpus.signatures[i], corpus.labels[i]);
      if (i + 1 == cut) frozen_tail.freeze();
    }
    fully_frozen.freeze();
    ASSERT_TRUE(fully_frozen.index().frozen());
    ASSERT_FALSE(never_frozen.index().frozen());
    ASSERT_FALSE(frozen_tail.index().frozen());

    const std::string bytes = save_to_string(never_frozen);
    EXPECT_EQ(save_to_string(fully_frozen), bytes)
        << shards << " shards: frozen vs unfrozen bytes";
    EXPECT_EQ(save_to_string(frozen_tail), bytes)
        << shards << " shards: frozen+tail vs unfrozen bytes";

    const SignatureDatabase reference = build_bulk(corpus, shards);
    expect_databases_equivalent(load_from_string(bytes), reference,
                                0xabc + shards,
                                std::to_string(shards) + " shards, any state");
  }
}

TEST(IndexSnapshot, DegenerateCorporaRoundTrip) {
  // Empty database.
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase empty(shards);
    const SignatureDatabase loaded = load_from_string(save_to_string(empty));
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.num_shards(), shards);
    util::Rng rng(1);
    EXPECT_TRUE(loaded
                    .search(random_sparse(rng, 16, 4), 3,
                            SimilarityMetric::kCosine)
                    .empty());
  }

  // One document; empty label; label with spaces/newlines (the binary
  // format has no separator restrictions, unlike the text corpus format).
  SignatureDatabase one(2);
  util::Rng rng(0xd0c);
  one.add(random_sparse(rng, 32, 6), "label with spaces\nand a newline");
  const SignatureDatabase loaded_one = load_from_string(save_to_string(one));
  ASSERT_EQ(loaded_one.size(), 1u);
  EXPECT_EQ(loaded_one.label(0), "label with spaces\nand a newline");
  EXPECT_TRUE(loaded_one.signature(0) == one.signature(0));

  // Every label identical, every document identical (maximal duplication).
  TestCorpus dup;
  const auto doc = random_sparse(rng, 32, 6);
  for (int i = 0; i < 20; ++i) {
    dup.signatures.push_back(doc);
    dup.labels.push_back("same");
  }
  for (const std::size_t shards : kShardCounts) {
    const SignatureDatabase reference = build_bulk(dup, shards);
    expect_databases_equivalent(load_from_string(save_to_string(reference)),
                                reference, 0x11 + shards,
                                "duplicates, " + std::to_string(shards));
  }

  // A document that is the empty vector (zero signature) survives too.
  TestCorpus with_empty = make_corpus(0xe0, 10);
  with_empty.signatures[4] = vsm::SparseVector();
  const SignatureDatabase reference = build_bulk(with_empty, 2);
  expect_databases_equivalent(load_from_string(save_to_string(reference)),
                              reference, 0x2222, "empty doc");
}

TEST(IndexSnapshot, ShardedIndexRoundTripWithoutLabels) {
  // The exec-layer API: an index-only snapshot (no labels section).
  util::Rng rng(0x1d8);
  for (const std::size_t shards : kShardCounts) {
    exec::ShardedIndex original(shards);
    for (int i = 0; i < 150; ++i) {
      original.add(random_sparse(rng, 64, 10, /*allow_negative=*/true));
    }

    std::ostringstream out;
    original.save(out);
    std::istringstream in(out.str());
    const exec::ShardedIndex loaded = exec::ShardedIndex::load(in);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.num_shards(), original.num_shards());
    EXPECT_EQ(loaded.num_terms(), original.num_terms());
    EXPECT_EQ(loaded.num_postings(), original.num_postings());
    EXPECT_TRUE(loaded.frozen());

    const exec::QueryEngine original_engine(original);
    const exec::QueryEngine loaded_engine(loaded);
    for (int q = 0; q < 5; ++q) {
      const auto query = random_sparse(rng, 64, 10, true);
      for (const auto metric :
           {index::Metric::kCosine, index::Metric::kEuclidean}) {
        const auto want = original_engine.run(query, 7, metric);
        const auto got = loaded_engine.run(query, 7, metric);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t r = 0; r < want.size(); ++r) {
          EXPECT_EQ(got[r].doc, want[r].doc) << "rank " << r;
          EXPECT_EQ(got[r].score, want[r].score) << "rank " << r;
        }
      }
    }
  }
}

TEST(IndexSnapshot, InvertedIndexSectionsRoundTrip) {
  // The index-layer primitive the higher layers are built from.
  util::Rng rng(0x90);
  index::InvertedIndex original;
  for (int i = 0; i < 80; ++i) {
    original.add(random_sparse(rng, 48, 8, /*allow_negative=*/true));
  }
  original.freeze();
  for (int i = 0; i < 10; ++i) {  // leave an unfrozen tail
    original.add(random_sparse(rng, 48, 8, true));
  }

  snap::Writer writer(1, original.size(), original.num_terms());
  original.save(writer, 0);
  std::ostringstream out;
  writer.finish(out);

  std::istringstream in(out.str());
  const snap::Reader reader(in);
  const index::InvertedIndex loaded = index::InvertedIndex::load(reader, 0);

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.num_terms(), original.num_terms());
  EXPECT_EQ(loaded.num_postings(), original.num_postings());
  EXPECT_TRUE(loaded.frozen());
  for (int q = 0; q < 8; ++q) {
    const auto query = random_sparse(rng, 48, 8, true);
    const auto want = original.top_k(query, 5);
    const auto got = loaded.top_k(query, 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(got[r].doc, want[r].doc);
      EXPECT_EQ(got[r].score, want[r].score);
    }
  }
}

TEST(IndexSnapshot, ParallelLoadMatchesInlineLoadDeterministically) {
  // 6000 docs clears the parallel-build cutoff, so ShardedIndex::load fans
  // per-shard re-freezes onto the pool — the configuration the TSan CI job
  // exercises. Loaded twice in parallel and once inline, all three must be
  // identical.
  util::Rng rng(0x6000);
  std::vector<vsm::SparseVector> docs;
  for (int i = 0; i < 6000; ++i) docs.push_back(random_sparse(rng, 64, 10));

  exec::ShardedIndex original(4);
  for (const auto& doc : docs) original.add(doc);
  std::ostringstream out;
  original.save(out);
  const std::string bytes = out.str();

  std::istringstream inline_in(bytes);
  const exec::ShardedIndex inline_loaded = exec::ShardedIndex::load(inline_in);

  exec::TaskPool pool(3);
  for (int run = 0; run < 2; ++run) {
    std::istringstream in(bytes);
    const exec::ShardedIndex parallel = exec::ShardedIndex::load(in, &pool);
    ASSERT_EQ(parallel.size(), inline_loaded.size()) << "run " << run;
    EXPECT_TRUE(parallel.frozen()) << "run " << run;
    EXPECT_EQ(parallel.num_terms(), inline_loaded.num_terms()) << "run " << run;
    EXPECT_EQ(parallel.num_postings(), inline_loaded.num_postings())
        << "run " << run;
    const auto want_stats = inline_loaded.shard_stats();
    const auto got_stats = parallel.shard_stats();
    ASSERT_EQ(got_stats.size(), want_stats.size());
    for (std::size_t s = 0; s < want_stats.size(); ++s) {
      EXPECT_EQ(got_stats[s].docs, want_stats[s].docs) << "shard " << s;
      EXPECT_EQ(got_stats[s].frozen_docs, want_stats[s].frozen_docs)
          << "shard " << s;
      EXPECT_EQ(got_stats[s].postings, want_stats[s].postings) << "shard " << s;
      EXPECT_EQ(got_stats[s].terms, want_stats[s].terms) << "shard " << s;
    }
    const exec::QueryEngine want_engine(inline_loaded, &pool);
    const exec::QueryEngine got_engine(parallel, &pool);
    for (int q = 0; q < 6; ++q) {
      const auto query = random_sparse(rng, 64, 10);
      for (const auto mode :
           {index::PruningMode::kExact, index::PruningMode::kMaxScore}) {
        const auto want =
            want_engine.run(query, 5, index::Metric::kCosine, mode);
        const auto got = got_engine.run(query, 5, index::Metric::kCosine, mode);
        ASSERT_EQ(got.size(), want.size()) << "run " << run << " q " << q;
        for (std::size_t r = 0; r < want.size(); ++r) {
          EXPECT_EQ(got[r].doc, want[r].doc) << "rank " << r;
          EXPECT_EQ(got[r].score, want[r].score) << "rank " << r;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Corruption and durability
// ---------------------------------------------------------------------------

/// Fixture state for the adversarial cases: a valid snapshot and a target
/// database with pre-existing contents that every failed load must leave
/// untouched.
class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = make_corpus(0xbad, 60);
    source_ = build_bulk(corpus_, 2);
    bytes_ = save_to_string(source_);

    target_ = SignatureDatabase(3);
    util::Rng rng(0x7a6);
    for (int i = 0; i < 10; ++i) {
      target_.add(random_sparse(rng, 40, 6), "pre-existing");
    }
    util::Rng qrng(0x31);
    probe_ = random_sparse(qrng, 40, 6);
    before_ = target_.search(probe_, 5, SimilarityMetric::kCosine);
  }

  /// Asserts that loading `bytes` fails with a SnapshotError whose message
  /// is a real diagnostic, and that the target database is untouched and
  /// still fully usable afterwards.
  void expect_clean_failure(const std::string& bytes,
                            const std::string& context) {
    std::istringstream in(bytes);
    try {
      target_.load(in);
      FAIL() << context << ": load of corrupt snapshot succeeded";
    } catch (const snap::SnapshotError& error) {
      EXPECT_GT(std::strlen(error.what()), 10u)
          << context << ": diagnostic too short";
    } catch (const std::exception& error) {
      FAIL() << context << ": wrong exception type: " << error.what();
    }
    // Strong guarantee: contents, labels and query results unchanged...
    ASSERT_EQ(target_.size(), 10u) << context;
    for (std::size_t id = 0; id < target_.size(); ++id) {
      ASSERT_EQ(target_.label(id), "pre-existing") << context;
    }
    expect_hits_identical(target_.search(probe_, 5, SimilarityMetric::kCosine),
                          before_, context);
    // ...and the database still accepts new work. Rebuild the 10-doc
    // state afterwards (same seed, same docs) so `before_` stays the
    // reference for the next corrupt input.
    util::Rng rng(0x99);
    target_.add(random_sparse(rng, 40, 6), "post-failure");
    ASSERT_EQ(target_.size(), 11u) << context;
    target_ = SignatureDatabase(3);
    util::Rng rebuild(0x7a6);
    for (int i = 0; i < 10; ++i) {
      target_.add(random_sparse(rebuild, 40, 6), "pre-existing");
    }
  }

  /// Header layout constants mirrored from snapshot.hpp's documentation.
  static constexpr std::size_t kPrefixBytes = 40;
  static constexpr std::size_t kDirEntryBytes = 24;

  std::uint32_t section_count() const {
    std::uint32_t sections = 0;
    std::memcpy(&sections, bytes_.data() + 20, sizeof(sections));
    return sections;
  }

  /// Payload byte range of directory entry `i`, computed from the file
  /// itself (kind/shard are returned for targeting specific sections).
  struct SectionSpan {
    std::uint32_t kind;
    std::uint32_t shard;
    std::size_t begin;
    std::size_t length;
  };
  std::vector<SectionSpan> section_spans() const {
    const std::uint32_t sections = section_count();
    std::vector<SectionSpan> spans;
    std::size_t payload_at =
        kPrefixBytes + sections * kDirEntryBytes + sizeof(std::uint64_t);
    for (std::uint32_t i = 0; i < sections; ++i) {
      const std::size_t entry = kPrefixBytes + i * kDirEntryBytes;
      SectionSpan span{};
      std::memcpy(&span.kind, bytes_.data() + entry, 4);
      std::memcpy(&span.shard, bytes_.data() + entry + 4, 4);
      std::uint64_t length = 0;
      std::memcpy(&length, bytes_.data() + entry + 8, 8);
      span.begin = payload_at;
      span.length = static_cast<std::size_t>(length);
      payload_at += span.length;
      spans.push_back(span);
    }
    return spans;
  }

  TestCorpus corpus_;
  SignatureDatabase source_{1};
  SignatureDatabase target_{1};
  std::string bytes_;
  vsm::SparseVector probe_;
  std::vector<SearchHit> before_;
};

TEST_F(SnapshotCorruption, ZeroLengthAndTinyFiles) {
  expect_clean_failure("", "zero-length file");
  expect_clean_failure("FM", "two-byte file");
  expect_clean_failure(std::string(39, '\0'), "short header of zeroes");
}

TEST_F(SnapshotCorruption, TruncationAtEveryRegion) {
  const std::vector<std::size_t> cuts = {
      8,                         // mid-magic... after magic, mid-version
      kPrefixBytes - 1,          // one byte short of the prefix
      kPrefixBytes + 5,          // mid-directory
      bytes_.size() / 2,         // mid-payload
      bytes_.size() - 1,         // one byte short
  };
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes_.size());
    expect_clean_failure(bytes_.substr(0, cut),
                         "truncated at byte " + std::to_string(cut));
  }
}

TEST_F(SnapshotCorruption, WrongVersionAndForeignEndianness) {
  // Version bumped to 2: rejected as unsupported *before* any checksum
  // math, so future formats get a version message, not "corrupt".
  std::string versioned = bytes_;
  const std::uint32_t two = 2;
  std::memcpy(versioned.data() + 8, &two, sizeof(two));
  std::istringstream vin(versioned);
  try {
    target_.load(vin);
    FAIL() << "version-2 snapshot accepted";
  } catch (const snap::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos)
        << error.what();
  }
  expect_clean_failure(versioned, "wrong version");

  // Byte-swapped endianness tag: the message names the real problem.
  std::string swapped = bytes_;
  std::swap(swapped[12], swapped[15]);
  std::swap(swapped[13], swapped[14]);
  std::istringstream ein(swapped);
  try {
    target_.load(ein);
    FAIL() << "foreign-endian snapshot accepted";
  } catch (const snap::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("endian"), std::string::npos)
        << error.what();
  }
  expect_clean_failure(swapped, "foreign endianness");
}

TEST_F(SnapshotCorruption, FlippedByteInHeaderAndDirectory) {
  // Every field of the fixed prefix and of the first directory entry: a
  // single flipped bit must be caught (magic/version/endian checks or the
  // header checksum that also covers the directory).
  for (const std::size_t at : {std::size_t{0}, std::size_t{9},
                               std::size_t{13}, std::size_t{16},
                               std::size_t{21}, std::size_t{26},
                               std::size_t{33}, kPrefixBytes + 1,
                               kPrefixBytes + 9, kPrefixBytes + 17}) {
    std::string corrupt = bytes_;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    expect_clean_failure(corrupt, "flipped byte at " + std::to_string(at));
  }
}

TEST_F(SnapshotCorruption, FlippedByteInEverySection) {
  // One flip in the middle (and at both edges) of every section payload —
  // offsets, term ids, weights of each shard, and the labels blob. The
  // per-section checksums must catch each one.
  const auto spans = section_spans();
  ASSERT_EQ(spans.size(), 2 * 3 + 1) << "2 shards x 3 sections + labels";
  bool saw_labels = false;
  for (const auto& span : spans) {
    if (span.kind == static_cast<std::uint32_t>(snap::SectionKind::kLabels)) {
      saw_labels = true;
    }
    if (span.length == 0) continue;
    for (const std::size_t offset :
         {std::size_t{0}, span.length / 2, span.length - 1}) {
      std::string corrupt = bytes_;
      corrupt[span.begin + offset] =
          static_cast<char>(corrupt[span.begin + offset] ^ 0x01);
      expect_clean_failure(corrupt, "flip in section kind " +
                                        std::to_string(span.kind) + "/" +
                                        std::to_string(span.shard) +
                                        " offset " + std::to_string(offset));
    }
  }
  EXPECT_TRUE(saw_labels);
}

TEST_F(SnapshotCorruption, ImplausibleHeaderCountsRejectedBeforeAllocation) {
  // Bit-rotted shard/section counts sit *before* any checksum can vouch
  // for them, so the reader must bound them sanity-first — a corrupt count
  // has to surface as a SnapshotError diagnostic, never as a
  // std::bad_alloc from sizing the directory off garbage.
  for (const std::size_t field_at : {std::size_t{16}, std::size_t{20}}) {
    std::string corrupt = bytes_;
    const std::uint32_t huge = 0x40000000u;
    std::memcpy(corrupt.data() + field_at, &huge, sizeof(huge));
    expect_clean_failure(corrupt, "huge count at byte " +
                                      std::to_string(field_at));
  }
}

TEST_F(SnapshotCorruption, TrailingGarbageRejected) {
  expect_clean_failure(bytes_ + "x", "one trailing byte");
  expect_clean_failure(bytes_ + std::string(1024, '\7'), "trailing blob");
}

TEST_F(SnapshotCorruption, IndexOnlySnapshotRejectedByDatabaseLoad) {
  // A ShardedIndex snapshot has no labels section; SignatureDatabase::load
  // must say so instead of inventing labels.
  std::ostringstream out;
  source_.index().save(out);
  expect_clean_failure(out.str(), "index-only snapshot into a database");
}

TEST_F(SnapshotCorruption, SuccessfulLoadReplacesTargetEntirely) {
  // The durability flip side: on *success* the old contents are gone and
  // the loaded archive answers exactly like the source.
  std::istringstream in(bytes_);
  target_.load(in);
  expect_databases_equivalent(target_, source_, 0xfeed, "post-load");
}

TEST_F(SnapshotCorruption, VerifyStreamAcceptsCleanArchiveAndReportsLayout) {
  std::istringstream in(bytes_);
  const snap::VerifyResult result = snap::verify_stream(in);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.shard_count, 2u);
  EXPECT_EQ(result.doc_count, 60u);
  EXPECT_EQ(result.total_bytes, bytes_.size());
  ASSERT_EQ(result.sections.size(), 2 * 3 + 1) << "2 shards x 3 + labels";
  for (const auto& section : result.sections) {
    EXPECT_TRUE(section.checksum_ok)
        << "kind " << static_cast<int>(section.kind) << " shard "
        << section.shard;
  }
}

TEST_F(SnapshotCorruption, VerifyStreamPinpointsTheDamagedSection) {
  // A flip in any section payload must flag exactly that section while the
  // scan keeps going — verify is a whole-file report, not a first-error
  // bail-out.
  for (const auto& span : section_spans()) {
    if (span.length == 0) continue;
    std::string corrupt = bytes_;
    const std::size_t at = span.begin + span.length / 2;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x04);
    std::istringstream in(corrupt);
    const snap::VerifyResult result = snap::verify_stream(in);
    const std::string context =
        "kind " + std::to_string(span.kind) + "/" + std::to_string(span.shard);
    EXPECT_FALSE(result.ok) << context;
    EXPECT_FALSE(result.error.empty()) << context;
    std::size_t flagged = 0;
    for (const auto& section : result.sections) {
      if (!section.checksum_ok) {
        ++flagged;
        EXPECT_EQ(static_cast<std::uint32_t>(section.kind), span.kind)
            << context;
        EXPECT_EQ(section.shard, span.shard) << context;
      }
    }
    EXPECT_EQ(flagged, 1u) << context;
    EXPECT_EQ(result.sections.size(), 7u) << context << ": scan stopped early";
  }
}

TEST_F(SnapshotCorruption, VerifyStreamReportsTruncationAndHeaderDamage) {
  {
    std::istringstream in(bytes_.substr(0, bytes_.size() - 5));
    const snap::VerifyResult result = snap::verify_stream(in);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("truncated"), std::string::npos)
        << result.error;
  }
  {
    std::string corrupt = bytes_;
    corrupt[3] = static_cast<char>(corrupt[3] ^ 0x01);  // inside the magic
    std::istringstream in(corrupt);
    const snap::VerifyResult result = snap::verify_stream(in);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
  }
  {
    std::istringstream in(bytes_ + "x");
    const snap::VerifyResult result = snap::verify_stream(in);
    EXPECT_FALSE(result.ok);
  }
}

TEST(IndexSnapshot, EnvSaveIsAtomicAtEveryFaultPoint) {
  // SignatureDatabase::save(env, path) either commits the whole archive or
  // leaves the previous one untouched — no fault point may expose a torn
  // or half-replaced file.
  const TestCorpus old_corpus = make_corpus(0x11, 8);
  const SignatureDatabase old_db = build_bulk(old_corpus, 1);
  const std::string old_bytes = save_to_string(old_db);
  const TestCorpus new_corpus = make_corpus(0x5a, 30);
  const SignatureDatabase new_db = build_bulk(new_corpus, 2);

  io::FaultInjectingEnv counter;
  counter.create_dir("d");
  old_db.save(counter, "d/archive");
  counter.sync_dir("d");
  counter.reset_ops();
  new_db.save(counter, "d/archive");
  const std::uint64_t total_ops = counter.ops_seen();
  ASSERT_GE(total_ops, 5u);  // create, write(s), fsync, rename, fsync-dir

  for (std::uint64_t n = 0; n < total_ops; ++n) {
    io::FaultInjectingEnv env;
    env.create_dir("d");
    old_db.save(env, "d/archive");
    env.sync_dir("d");
    env.reset_ops();
    env.fail_at_op(n);
    EXPECT_THROW(new_db.save(env, "d/archive"), snap::SnapshotError)
        << "op " << n;
    env.disarm();
    env.crash(io::InMemoryEnv::CrashMode::kDropUnsynced);
    EXPECT_EQ(env.read_file("d/archive"), old_bytes) << "op " << n;
  }

  // And the fault-free commit round-trips through Env load.
  io::InMemoryEnv env;
  env.create_dir("d");
  new_db.save(env, "d/archive");
  SignatureDatabase loaded;
  loaded.load(env, "d/archive");
  expect_databases_equivalent(loaded, new_db, 0xabba, "env round trip");
}

TEST(DurableArchive, JournalTornTailNeverDiscardsTheSnapshot) {
  // The satellite contract: whatever shape the journal's tail is torn
  // into, reopening recovers to the last good record and the checkpointed
  // snapshot is never thrown away.
  namespace jrn = io::journal;
  util::Rng rng(0x5eed);
  std::vector<std::vector<vsm::SparseVector>> sigs(4);
  std::vector<std::vector<std::string>> labels(4);
  for (int b = 0; b < 4; ++b) {
    for (int d = 0; d < 2; ++d) {
      sigs[b].push_back(random_sparse(rng, 48, 8));
      labels[b].push_back("b" + std::to_string(b) + "d" + std::to_string(d));
    }
  }
  // Batches 0,1 live in the checkpointed snapshot; 2,3 in the journal.
  const auto build = [&](io::Env& env) {
    DurableDatabase db(env, "arch", {.num_shards = 2});
    db.add_batch(sigs[0], labels[0]);
    db.add_batch(sigs[1], labels[1]);
    db.checkpoint();
    db.add_batch(sigs[2], labels[2]);
    db.add_batch(sigs[3], labels[3]);
  };
  const std::string jpath = "arch/" + journal_name(1);

  io::InMemoryEnv pristine;
  build(pristine);
  const std::string good = pristine.read_file(jpath);
  std::vector<std::size_t> record_sizes;
  jrn::replay(
      pristine, jpath,
      [&](std::span<const std::byte> p) { record_sizes.push_back(p.size()); },
      false);
  ASSERT_EQ(record_sizes.size(), 2u);
  const std::size_t first_end =
      jrn::kHeaderBytes + jrn::kRecordHeaderBytes + record_sizes[0];

  const auto flip = [](std::string bytes, std::size_t at) {
    bytes[at] = static_cast<char>(bytes[at] ^ 0x10);
    return bytes;
  };
  struct Shape {
    std::string name;
    std::string bytes;
    std::size_t replayed;  ///< journal records that must survive
  };
  const std::vector<Shape> shapes = {
      {"cut inside length prefix", good.substr(0, first_end + 2), 1},
      {"flip in record header", flip(good, first_end + 1), 1},
      {"flip in record payload",
       flip(good, first_end + jrn::kRecordHeaderBytes + 3), 1},
      {"trailing garbage after valid tail", good + "zz", 2},
  };
  for (const Shape& shape : shapes) {
    io::InMemoryEnv env;
    build(env);
    auto file = env.new_writable_file(jpath, /*truncate=*/true);
    file->append(std::string_view(shape.bytes));
    file->sync();
    file->close();

    DurableDatabase reopened(env, "arch", {.num_shards = 2});
    EXPECT_TRUE(reopened.recovery().snapshot_loaded) << shape.name;
    EXPECT_TRUE(reopened.recovery().journal_truncated) << shape.name;
    EXPECT_EQ(reopened.recovery().journal_records_replayed, shape.replayed)
        << shape.name;
    ASSERT_EQ(reopened.db().size(), (2 + shape.replayed) * 2) << shape.name;
    std::size_t id = 0;
    for (std::size_t b = 0; b < 2 + shape.replayed; ++b) {
      for (std::size_t d = 0; d < 2; ++d, ++id) {
        EXPECT_EQ(reopened.db().label(id), labels[b][d]) << shape.name;
      }
    }
    // Repair left a journal that accepts new batches and checkpoints.
    reopened.add_batch(sigs[3], labels[3]);
    reopened.checkpoint();
    DurableDatabase again(env, "arch", {.num_shards = 2});
    EXPECT_EQ(again.db().size(), (2 + shape.replayed + 1) * 2) << shape.name;
  }
}

TEST(IndexSnapshot, ShardedIndexLoadAcceptsDatabaseSnapshots) {
  // The exec layer ignores the labels section — an operator can point the
  // index loader at a full database snapshot.
  const TestCorpus corpus = make_corpus(0xcc, 50);
  const SignatureDatabase db = build_bulk(corpus, 2);
  std::istringstream in(save_to_string(db));
  const exec::ShardedIndex loaded = exec::ShardedIndex::load(in);
  EXPECT_EQ(loaded.size(), db.size());
  EXPECT_EQ(loaded.num_terms(), db.index().num_terms());
  EXPECT_EQ(loaded.num_postings(), db.index().num_postings());
}

}  // namespace
}  // namespace fmeter::core
