// Env layer battery (io/env.hpp): PosixEnv against a real temp directory,
// InMemoryEnv's crash model (volatile vs durable bytes and namespace),
// FaultInjectingEnv's deterministic fault points and torn writes, and the
// AtomicFileWriter commit protocol that snapshot and manifest writes ride.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "io/env.hpp"

namespace fmeter::io {
namespace {

std::span<const std::byte> as_bytes(const std::string& text) {
  return {reinterpret_cast<const std::byte*>(text.data()), text.size()};
}

// ---------------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------------

class PosixEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "fmeter_io_env_" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->line());
    Env::posix().create_dir(dir_);
  }
  void TearDown() override {
    // Best-effort sweep so reruns start clean.
    Env& env = Env::posix();
    try {
      for (const auto& name : env.list_dir(dir_)) {
        env.remove_file(dir_ + "/" + name);
      }
    } catch (...) {
    }
  }
  std::string dir_;
};

TEST_F(PosixEnvTest, WriteReadRoundTrip) {
  Env& env = Env::posix();
  const std::string path = dir_ + "/file.bin";
  {
    auto file = env.new_writable_file(path);
    file->append(std::string_view("hello "));
    file->append(std::string_view("world"));
    file->sync();
    file->close();
  }
  EXPECT_TRUE(env.file_exists(path));
  EXPECT_EQ(env.file_size(path), 11u);
  EXPECT_EQ(env.read_file(path), "hello world");

  // Positioned reads, including past EOF.
  auto reader = env.new_random_access_file(path);
  std::vector<std::byte> buf(5);
  EXPECT_EQ(reader->read(6, buf), 5u);
  EXPECT_EQ(std::memcmp(buf.data(), "world", 5), 0);
  EXPECT_EQ(reader->read(100, buf), 0u);
  EXPECT_EQ(reader->read(9, buf), 2u);  // short read at EOF
}

TEST_F(PosixEnvTest, AppendModeExtendsTruncateModeReplaces) {
  Env& env = Env::posix();
  const std::string path = dir_ + "/mode.bin";
  env.new_writable_file(path)->append(std::string_view("abc"));
  env.new_writable_file(path, /*truncate=*/false)
      ->append(std::string_view("def"));
  EXPECT_EQ(env.read_file(path), "abcdef");
  env.new_writable_file(path, /*truncate=*/true)
      ->append(std::string_view("xyz"));
  EXPECT_EQ(env.read_file(path), "xyz");
}

TEST_F(PosixEnvTest, ErrorsCarryErrnoText) {
  Env& env = Env::posix();
  try {
    env.read_file(dir_ + "/absent");
    FAIL() << "read of a missing file succeeded";
  } catch (const IoError& error) {
    EXPECT_EQ(error.error_code(), ENOENT);
    EXPECT_NE(std::string(error.what()).find("absent"), std::string::npos);
  }
  EXPECT_THROW(env.file_size(dir_ + "/absent"), IoError);
  EXPECT_THROW(env.remove_file(dir_ + "/absent"), IoError);
  EXPECT_THROW(env.truncate_file(dir_ + "/absent", 0), IoError);
}

TEST_F(PosixEnvTest, RenameListTruncate) {
  Env& env = Env::posix();
  env.new_writable_file(dir_ + "/a")->append(std::string_view("aaaa"));
  env.new_writable_file(dir_ + "/b")->append(std::string_view("bb"));
  env.rename_file(dir_ + "/a", dir_ + "/c");
  env.sync_dir(dir_);
  const auto names = env.list_dir(dir_);
  EXPECT_EQ(names, (std::vector<std::string>{"b", "c"}));
  env.truncate_file(dir_ + "/c", 2);
  EXPECT_EQ(env.read_file(dir_ + "/c"), "aa");
}

TEST_F(PosixEnvTest, AtomicFileWriterCommitsAndAbandons) {
  Env& env = Env::posix();
  const std::string path = dir_ + "/target";
  {
    AtomicFileWriter writer(env, path);
    writer.stream() << "version 1";
    writer.commit();
  }
  EXPECT_EQ(env.read_file(path), "version 1");

  // Abandoned writer: old contents untouched, temp file removed.
  {
    AtomicFileWriter writer(env, path);
    writer.stream() << "version 2, never committed";
  }
  EXPECT_EQ(env.read_file(path), "version 1");
  EXPECT_EQ(env.list_dir(dir_), (std::vector<std::string>{"target"}));
}

// ---------------------------------------------------------------------------
// InMemoryEnv crash model
// ---------------------------------------------------------------------------

TEST(InMemoryEnv, UnsyncedBytesVanishAtCrashSyncedBytesSurvive) {
  InMemoryEnv env;
  env.create_dir("d");
  auto file = env.new_writable_file("d/f");
  file->append(std::string_view("durable"));
  file->sync();
  env.sync_dir("d");  // the *name* d/f becomes durable here
  file->append(std::string_view(" volatile"));
  EXPECT_EQ(env.read_file("d/f"), "durable volatile");

  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  EXPECT_EQ(env.read_file("d/f"), "durable");

  // The open handle still works; its future appends start from the
  // survived image.
  file->append(std::string_view("!"));
  EXPECT_EQ(env.read_file("d/f"), "durable!");
}

TEST(InMemoryEnv, UnsyncedNamespaceRollsBack) {
  InMemoryEnv env;
  env.create_dir("d");
  {
    auto file = env.new_writable_file("d/old");
    file->append(std::string_view("old"));
    file->sync();
  }
  env.sync_dir("d");

  // Create + rename without a dir sync: both roll back at crash.
  env.new_writable_file("d/fresh")->sync();
  env.rename_file("d/old", "d/renamed");
  EXPECT_TRUE(env.file_exists("d/fresh"));
  EXPECT_TRUE(env.file_exists("d/renamed"));
  EXPECT_FALSE(env.file_exists("d/old"));

  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  EXPECT_FALSE(env.file_exists("d/fresh"));
  EXPECT_FALSE(env.file_exists("d/renamed"));
  EXPECT_EQ(env.read_file("d/old"), "old");
}

TEST(InMemoryEnv, SyncDirCommitsRenameOverwriteAtomically) {
  InMemoryEnv env;
  env.create_dir("d");
  {
    auto file = env.new_writable_file("d/target");
    file->append(std::string_view("v1"));
    file->sync();
  }
  env.sync_dir("d");
  {
    auto file = env.new_writable_file("d/target.tmp");
    file->append(std::string_view("v2"));
    file->sync();
  }
  env.rename_file("d/target.tmp", "d/target");
  env.sync_dir("d");

  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  EXPECT_EQ(env.read_file("d/target"), "v2");
  EXPECT_FALSE(env.file_exists("d/target.tmp"));
}

TEST(InMemoryEnv, PersistEverythingKeepsTheVolatileView) {
  InMemoryEnv env;
  env.create_dir("d");
  env.new_writable_file("d/f")->append(std::string_view("never synced"));
  env.crash(InMemoryEnv::CrashMode::kPersistEverything);
  EXPECT_EQ(env.read_file("d/f"), "never synced");
}

TEST(InMemoryEnv, ShortReadsNeverTruncateReadFile) {
  // Models an Env whose read() legally returns fewer bytes than requested
  // without being at EOF (a pread interrupted by a signal, a chunked
  // transport). read_file must loop until EOF — before it did, a single
  // trusting read silently handed back a truncated file, which a
  // checksummed snapshot then rejected as corruption it never had.
  InMemoryEnv env;
  env.create_dir("d");
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload += "0123456789";
  {
    auto file = env.new_writable_file("d/f");
    file->append(payload);
  }
  // Sweep chunk sizes, including pathological 1-byte reads and a chunk
  // that does not divide the file size evenly.
  for (const std::size_t limit : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}, std::size_t{0}}) {
    env.set_read_chunk_limit(limit);
    EXPECT_EQ(env.read_file("d/f"), payload) << "chunk limit " << limit;
  }

  // The raw handle still reports short reads — the knob constrains the
  // primitive, the loop in read_file is what restores the full contract.
  env.set_read_chunk_limit(7);
  const auto file = env.new_random_access_file("d/f");
  std::vector<std::byte> into(64);
  EXPECT_EQ(file->read(0, into), 7u);
  env.set_read_chunk_limit(0);
  EXPECT_EQ(file->read(0, into), 64u);
}

TEST(InMemoryEnv, TruncateIsJournaledMetadata) {
  InMemoryEnv env;
  env.create_dir("d");
  auto file = env.new_writable_file("d/f");
  file->append(std::string_view("0123456789"));
  file->sync();
  env.sync_dir("d");
  env.truncate_file("d/f", 4);
  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  // No journaling FS resurrects truncated bytes.
  EXPECT_EQ(env.read_file("d/f"), "0123");
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

TEST(FaultInjectingEnv, NthOperationThrowsDeterministically) {
  const auto scenario = [](Env& env) {
    env.create_dir("d");                              // op 0 (mkdir)
    auto file = env.new_writable_file("d/f");         // op 1 (create)
    file->append(std::string_view("abc"));            // op 2 (write)
    file->sync();                                     // op 3 (fsync)
    env.sync_dir("d");                                // op 4 (fsync-dir)
  };
  FaultInjectingEnv counter;
  scenario(counter);
  ASSERT_EQ(counter.ops_seen(), 5u);

  for (std::uint64_t n = 0; n < 5; ++n) {
    FaultInjectingEnv env;
    env.set_tear(FaultInjectingEnv::TearMode::kNone);
    env.fail_at_op(n);
    try {
      scenario(env);
      FAIL() << "no fault at op " << n;
    } catch (const IoError& error) {
      EXPECT_NE(std::string(error.what()).find("injected fault"),
                std::string::npos);
    }
    // The fault fires exactly once: disarmed, the same env completes the
    // scenario (whose truncating create resets the file).
    env.disarm();
    scenario(env);
    EXPECT_EQ(env.read_file("d/f"), "abc");
  }
}

TEST(FaultInjectingEnv, TornWritePersistsHalfThePayload) {
  FaultInjectingEnv env;
  env.create_dir("d");
  auto file = env.new_writable_file("d/f");
  file->append(std::string_view("base"));
  file->sync();
  env.sync_dir("d");

  env.reset_ops();
  env.fail_at_op(0);
  env.set_tear(FaultInjectingEnv::TearMode::kHalf);
  EXPECT_THROW(file->append(std::string_view("ABCDEFGH")), IoError);

  env.disarm();
  env.crash(InMemoryEnv::CrashMode::kDropUnsynced);
  // Half of the failing 8-byte append reached the durable image.
  EXPECT_EQ(env.read_file("d/f"), "baseABCD");
}

TEST(FaultInjectingEnv, AtomicCommitNeverTearsTheTarget) {
  // Every fault point of a commit-over-existing-file cycle, with tearing:
  // after crash + recovery the target is either fully old or fully new.
  const std::string old_content = "the old contents, fsync'd";
  const std::string new_content = "replacement of a different length";

  const auto prepare = [&](FaultInjectingEnv& env) {
    env.create_dir("d");
    auto file = env.new_writable_file("d/t");
    file->append(as_bytes(old_content));
    file->sync();
    env.sync_dir("d");
    env.reset_ops();
  };
  const auto commit_cycle = [&](Env& env) {
    AtomicFileWriter writer(env, "d/t");
    writer.file().append(as_bytes(new_content));
    writer.commit();
  };

  FaultInjectingEnv counter;
  prepare(counter);
  commit_cycle(counter);
  const std::uint64_t total = counter.ops_seen();
  ASSERT_GE(total, 4u);  // create, write, fsync, rename, fsync-dir

  for (std::uint64_t n = 0; n < total; ++n) {
    for (const auto mode : {InMemoryEnv::CrashMode::kDropUnsynced,
                            InMemoryEnv::CrashMode::kPersistEverything}) {
      FaultInjectingEnv env;
      prepare(env);
      env.fail_at_op(n);
      try {
        commit_cycle(env);
        FAIL() << "no fault at op " << n;
      } catch (const IoError&) {
      }
      env.disarm();
      env.crash(mode);
      const std::string seen = env.read_file("d/t");
      EXPECT_TRUE(seen == old_content || seen == new_content)
          << "torn target at op " << n << ": \"" << seen << "\"";
      if (mode == InMemoryEnv::CrashMode::kDropUnsynced) {
        // Strict POSIX: the rename only becomes durable at the directory
        // sync, which is the cycle's last op — so every interrupted cycle
        // must roll back whole.
        EXPECT_EQ(seen, old_content) << "premature commit at op " << n;
      }
    }
  }
}

TEST(FaultInjectingEnv, ParentDirHelper) {
  EXPECT_EQ(parent_dir("a/b/c"), "a/b");
  EXPECT_EQ(parent_dir("a/b"), "a");
  EXPECT_EQ(parent_dir("plain"), "");
}

}  // namespace
}  // namespace fmeter::io
