#include "trace/fmeter_tracer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "simkern/kernel.hpp"

namespace fmeter::trace {
namespace {

simkern::KernelConfig small_config(std::uint32_t cpus = 4) {
  simkern::KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = cpus;
  return config;
}

class FmeterTracerTest : public ::testing::Test {
 protected:
  FmeterTracerTest()
      : kernel_(small_config()),
        tracer_(kernel_.symbols(), kernel_.num_cpus()) {
    kernel_.install_tracer(&tracer_);
  }

  simkern::Kernel kernel_;
  FmeterTracer tracer_;
};

TEST_F(FmeterTracerTest, CountsExactlyOnePerInvocation) {
  auto& cpu = kernel_.cpu(0);
  const simkern::FunctionId fn = kernel_.id_of("vfs_read");
  for (int i = 0; i < 137; ++i) kernel_.invoke(cpu, fn);
  EXPECT_EQ(tracer_.count(fn), 137u);
}

TEST_F(FmeterTracerTest, CountingExactnessOverRandomMix) {
  // Counting exactness invariant: for any sequence, per-function counts
  // equal the number of dispatches.
  auto& cpu = kernel_.cpu(0);
  util::Rng rng(9);
  std::map<simkern::FunctionId, std::uint64_t> expected;
  for (int i = 0; i < 20000; ++i) {
    const auto fn = static_cast<simkern::FunctionId>(
        rng.below(kernel_.symbols().size()));
    kernel_.invoke(cpu, fn);
    ++expected[fn];
  }
  for (const auto& [fn, count] : expected) {
    EXPECT_EQ(tracer_.count(fn), count) << "fn " << fn;
  }
}

TEST_F(FmeterTracerTest, PerCpuSlotsIsolated) {
  const simkern::FunctionId fn = kernel_.id_of("schedule");
  kernel_.invoke(kernel_.cpu(0), fn);
  kernel_.invoke(kernel_.cpu(0), fn);
  kernel_.invoke(kernel_.cpu(2), fn);
  EXPECT_EQ(tracer_.count_on_cpu(0, fn), 2u);
  EXPECT_EQ(tracer_.count_on_cpu(1, fn), 0u);
  EXPECT_EQ(tracer_.count_on_cpu(2, fn), 1u);
  EXPECT_EQ(tracer_.count(fn), 3u);
}

TEST_F(FmeterTracerTest, SnapshotSumsAllCpus) {
  const simkern::FunctionId fn = kernel_.id_of("kmalloc");
  for (simkern::CpuId c = 0; c < kernel_.num_cpus(); ++c) {
    kernel_.invoke(kernel_.cpu(c), fn);
  }
  const CounterSnapshot snap = tracer_.snapshot();
  ASSERT_EQ(snap.counts.size(), kernel_.symbols().size());
  EXPECT_EQ(snap.counts[fn], kernel_.num_cpus());
}

TEST_F(FmeterTracerTest, SlotMappingCoversAllFunctionsUniquely) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
  for (std::size_t fn = 0; fn < tracer_.num_functions(); ++fn) {
    const auto where = tracer_.slot_of(static_cast<simkern::FunctionId>(fn));
    EXPECT_LT(where.page, tracer_.pages_per_cpu());
    EXPECT_LT(where.slot, 512u);
    ++seen[{where.page, where.slot}];
  }
  for (const auto& [slot, count] : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(seen.size(), tracer_.num_functions());
}

TEST_F(FmeterTracerTest, PagesSizedLikeThePrototype) {
  // 900 functions at 512 slots/page -> 2 pages per CPU.
  EXPECT_EQ(tracer_.pages_per_cpu(), 2u);
}

TEST_F(FmeterTracerTest, ResetZeroesEverything) {
  kernel_.invoke(kernel_.cpu(0), 5);
  tracer_.reset();
  EXPECT_EQ(tracer_.snapshot().total(), 0u);
}

TEST_F(FmeterTracerTest, PreemptionDisabledDuringIncrementBalances) {
  auto& cpu = kernel_.cpu(0);
  kernel_.invoke(cpu, 1);
  EXPECT_EQ(cpu.preempt_count(), 0u);
}

TEST_F(FmeterTracerTest, DebugfsExportRoundTrip) {
  DebugFs fs;
  tracer_.register_debugfs(fs);
  kernel_.invoke(kernel_.cpu(0), 7);
  kernel_.invoke(kernel_.cpu(1), 7);
  kernel_.invoke(kernel_.cpu(1), 9);
  const auto snap = CounterSnapshot::deserialize(fs.read("fmeter/counters"));
  EXPECT_EQ(snap.counts[7], 2u);
  EXPECT_EQ(snap.counts[9], 1u);
}

TEST_F(FmeterTracerTest, DebugfsResetControl) {
  DebugFs fs;
  tracer_.register_debugfs(fs);
  kernel_.invoke(kernel_.cpu(0), 3);
  fs.write("fmeter/reset", "1");
  EXPECT_EQ(tracer_.snapshot().total(), 0u);
}

TEST_F(FmeterTracerTest, NameIsFmeter) { EXPECT_STREQ(tracer_.name(), "fmeter"); }

TEST(FmeterTracerConfig, InvalidConfigsThrow) {
  simkern::Kernel kernel(small_config());
  EXPECT_THROW(FmeterTracer(kernel.symbols(), 0), std::invalid_argument);
  FmeterTracerConfig config;
  config.slots_per_page = 0;
  EXPECT_THROW(FmeterTracer(kernel.symbols(), 1, config), std::invalid_argument);
}

TEST(FmeterTracerConfig, OddSlotSizesStillBijective) {
  simkern::Kernel kernel(small_config());
  FmeterTracerConfig config;
  config.slots_per_page = 7;  // deliberately not a power of two
  FmeterTracer tracer(kernel.symbols(), 2, config);
  kernel.install_tracer(&tracer);
  kernel.invoke(kernel.cpu(0), 899);
  EXPECT_EQ(tracer.count(899), 1u);
}

// SMP exactness: one thread per CPU hammering overlapping function sets; the
// per-CPU single-writer discipline must keep totals exact without locks.
TEST(FmeterTracerSmp, ConcurrentCountingIsExact) {
  simkern::Kernel kernel(small_config(8));
  FmeterTracer tracer(kernel.symbols(), kernel.num_cpus());
  kernel.install_tracer(&tracer);

  constexpr std::uint64_t kPerCpu = 50000;
  std::vector<std::thread> threads;
  for (simkern::CpuId c = 0; c < kernel.num_cpus(); ++c) {
    threads.emplace_back([&kernel, c] {
      auto& cpu = kernel.cpu(c);
      for (std::uint64_t i = 0; i < kPerCpu; ++i) {
        // All CPUs hit the same hot set — worst case for false sharing.
        kernel.invoke(cpu, static_cast<simkern::FunctionId>(i % 13));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const CounterSnapshot snap = tracer.snapshot();
  EXPECT_EQ(snap.total(), kPerCpu * kernel.num_cpus());
  for (simkern::FunctionId fn = 0; fn < 13; ++fn) {
    std::uint64_t expected_per_cpu = kPerCpu / 13 + (fn < kPerCpu % 13 ? 1 : 0);
    EXPECT_EQ(snap.counts[fn], expected_per_cpu * kernel.num_cpus());
  }
}

}  // namespace
}  // namespace fmeter::trace
