// ShardedIndex: round-robin id mapping invariants, balanced shard fill,
// distinct-term and posting aggregation, and memory accounting.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "exec/sharded_index.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::exec {
namespace {

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

TEST(ShardedIndex, GlobalLocalMappingRoundTrips) {
  for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const ShardedIndex index(shards);
    for (ShardedIndex::DocId global = 0; global < 100; ++global) {
      const std::size_t shard = index.shard_of(global);
      const auto local = index.local_of(global);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(index.global_of(shard, local), global)
          << shards << " shards, global " << global;
    }
  }
}

TEST(ShardedIndex, AddAssignsSequentialGlobalIdsAndBalancesShards) {
  util::Rng rng(0x51a2);
  ShardedIndex index(3);
  for (ShardedIndex::DocId expected = 0; expected < 20; ++expected) {
    EXPECT_EQ(index.add(random_sparse(rng, 32, 6)), expected);
  }
  EXPECT_EQ(index.size(), 20u);
  // Round-robin keeps shard sizes within one document of each other.
  std::size_t smallest = index.shard(0).size();
  std::size_t largest = smallest;
  std::size_t total = 0;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    const std::size_t docs = index.shard(s).size();
    smallest = std::min(smallest, docs);
    largest = std::max(largest, docs);
    total += docs;
  }
  EXPECT_EQ(total, 20u);
  EXPECT_LE(largest - smallest, 1u);
}

TEST(ShardedIndex, ZeroShardRequestClampsToOne) {
  ShardedIndex index(0);
  EXPECT_EQ(index.num_shards(), 1u);
  EXPECT_EQ(index.add(vsm::SparseVector::from_entries({{0, 1.0}})), 0u);
}

TEST(ShardedIndex, NumTermsCountsDistinctTermsAcrossShards) {
  ShardedIndex index(2);
  // Term 7 lands in both shards; it must count once globally even though
  // each shard reports it separately.
  index.add(vsm::SparseVector::from_entries({{7, 1.0}, {3, 0.5}}));  // shard 0
  index.add(vsm::SparseVector::from_entries({{7, 2.0}}));            // shard 1
  index.add(vsm::SparseVector::from_entries({{11, 1.0}}));           // shard 0
  EXPECT_EQ(index.num_terms(), 3u);  // terms 3, 7, 11
  EXPECT_EQ(index.num_postings(), 4u);
  std::size_t per_shard_term_sum = 0;
  for (const auto& stats : index.shard_stats()) {
    per_shard_term_sum += stats.terms;
  }
  EXPECT_EQ(per_shard_term_sum, 4u);  // 7,3 in shard 0 + 7 in shard 1 + 11
}

TEST(ShardedIndex, ShardStatsSumToAggregates) {
  util::Rng rng(0x57a7);
  ShardedIndex index(4);
  for (int i = 0; i < 40; ++i) index.add(random_sparse(rng, 64, 10));

  const auto stats = index.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::size_t docs = 0;
  std::size_t postings = 0;
  std::size_t memory = 0;
  for (const auto& shard : stats) {
    docs += shard.docs;
    postings += shard.postings;
    memory += shard.memory_bytes;
  }
  EXPECT_EQ(docs, index.size());
  EXPECT_EQ(postings, index.num_postings());
  // Aggregate = shard footprints + this layer's term bitmap.
  EXPECT_GE(index.memory_bytes(), memory);
}

TEST(ShardedIndex, MemoryBytesTracksContent) {
  ShardedIndex index(2);
  EXPECT_EQ(index.num_postings(), 0u);
  const std::size_t before = index.memory_bytes();
  util::Rng rng(0x3e3);
  for (int i = 0; i < 30; ++i) index.add(random_sparse(rng, 48, 8));
  // Postings dominate the footprint: at least one (doc, weight) pair per
  // posting must be accounted for.
  EXPECT_GE(index.memory_bytes(),
            before + index.num_postings() *
                         (sizeof(std::uint32_t) + sizeof(double)));
}

}  // namespace
}  // namespace fmeter::exec
