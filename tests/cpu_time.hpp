// Shared test helper: per-process CPU seconds.
//
// Tracer-overhead tests assert cost *ratios* between tracers. Measuring
// with a wall clock makes those assertions flake whenever another process
// steals the core mid-measurement (parallel ctest, a benchmark, CI noise);
// process CPU time is immune to that.
//
// The clock itself lives in util/cpu_time.hpp — one implementation shared
// with bench_common.hpp so the tests and the benches can never measure
// with subtly different clocks. This header only keeps the historical
// fmeter::testing spelling alive for the tracer tests.
#pragma once

#include "util/cpu_time.hpp"

namespace fmeter::testing {

using util::cpu_seconds;

}  // namespace fmeter::testing
