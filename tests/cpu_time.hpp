// Shared test helper: per-process CPU seconds.
//
// Tracer-overhead tests assert cost *ratios* between tracers. Measuring
// with a wall clock makes those assertions flake whenever another process
// steals the core mid-measurement (parallel ctest, a benchmark, CI noise);
// process CPU time is immune to that.
#pragma once

#include <ctime>

namespace fmeter::testing {

inline double cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace fmeter::testing
