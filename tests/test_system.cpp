#include "fmeter/system.hpp"

#include <gtest/gtest.h>

namespace fmeter::core {
namespace {

SystemConfig small_system(TracerKind tracer = TracerKind::kFmeter) {
  SystemConfig config;
  config.kernel.symbols.total_functions = 900;
  config.kernel.num_cpus = 2;
  config.tracer = tracer;
  return config;
}

TEST(MonitoredSystem, BootsWithRequestedTracer) {
  MonitoredSystem vanilla(small_system(TracerKind::kVanilla));
  EXPECT_EQ(vanilla.active_tracer(), TracerKind::kVanilla);
  EXPECT_EQ(vanilla.kernel().tracer(), nullptr);

  MonitoredSystem fmeter(small_system(TracerKind::kFmeter));
  EXPECT_EQ(fmeter.kernel().tracer(), &fmeter.fmeter());

  MonitoredSystem ftrace(small_system(TracerKind::kFtrace));
  EXPECT_EQ(ftrace.kernel().tracer(), &ftrace.ftrace());
}

TEST(MonitoredSystem, TracerSwitchRoutesEvents) {
  MonitoredSystem system(small_system(TracerKind::kVanilla));
  auto& kernel = system.kernel();
  auto& cpu = kernel.cpu(0);

  kernel.invoke(cpu, 1);
  EXPECT_EQ(system.fmeter().snapshot().total(), 0u);

  system.select_tracer(TracerKind::kFmeter);
  kernel.invoke(cpu, 1);
  EXPECT_EQ(system.fmeter().snapshot().total(), 1u);
  EXPECT_EQ(system.ftrace().entries_written(), 0u);

  system.select_tracer(TracerKind::kFtrace);
  kernel.invoke(cpu, 1);
  EXPECT_EQ(system.ftrace().entries_written(), 1u);
  EXPECT_EQ(system.fmeter().snapshot().total(), 1u);  // unchanged
}

TEST(MonitoredSystem, DebugfsFilesRegistered) {
  MonitoredSystem system(small_system());
  EXPECT_TRUE(system.debugfs().exists("fmeter/counters"));
  EXPECT_TRUE(system.debugfs().exists("fmeter/reset"));
  EXPECT_TRUE(system.debugfs().exists("tracing/trace_pipe"));
  EXPECT_TRUE(system.debugfs().exists("tracing/buffer_stats"));
}

TEST(MonitoredSystem, TracerKindNames) {
  EXPECT_STREQ(tracer_kind_name(TracerKind::kVanilla), "vanilla");
  EXPECT_STREQ(tracer_kind_name(TracerKind::kFtrace), "ftrace");
  EXPECT_STREQ(tracer_kind_name(TracerKind::kFmeter), "fmeter");
}

}  // namespace
}  // namespace fmeter::core
