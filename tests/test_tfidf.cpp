#include "vsm/tfidf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "vsm/document.hpp"

namespace fmeter::vsm {
namespace {

CountDocument doc(std::vector<std::pair<CountDocument::TermId,
                                        CountDocument::Count>> counts,
                  std::string label = {}, double duration = 0.0) {
  return CountDocument::from_counts(std::move(counts), std::move(label),
                                    duration);
}

Corpus tiny_corpus() {
  Corpus corpus;
  corpus.add(doc({{0, 4}, {1, 4}}, "a"));
  corpus.add(doc({{0, 2}, {2, 6}}, "b"));
  corpus.add(doc({{0, 1}, {1, 1}, {2, 2}}, "c"));
  return corpus;
}

TEST(TfIdf, FitCountsDocumentFrequencies) {
  TfIdfModel model;
  model.fit(tiny_corpus());
  EXPECT_EQ(model.num_documents(), 3u);
  EXPECT_EQ(model.document_frequency(0), 3u);
  EXPECT_EQ(model.document_frequency(1), 2u);
  EXPECT_EQ(model.document_frequency(2), 2u);
  EXPECT_EQ(model.document_frequency(99), 0u);
  EXPECT_EQ(model.vocabulary_size(), 3u);
}

TEST(TfIdf, FitEmptyCorpusThrows) {
  TfIdfModel model;
  EXPECT_THROW(model.fit(Corpus{}), std::invalid_argument);
}

TEST(TfIdf, TransformBeforeFitThrows) {
  TfIdfModel model;
  EXPECT_THROW(model.transform(doc({{0, 1}})), std::logic_error);
}

TEST(TfIdf, IdfFormulaExact) {
  TfIdfModel model;
  model.fit(tiny_corpus());
  // idf_i = log(|D| / df_i), paper §2.1.
  EXPECT_NEAR(model.idf(1), std::log(3.0 / 2.0), 1e-12);
  EXPECT_NEAR(model.idf(0), std::log(3.0 / 3.0), 1e-12);
}

TEST(TfIdf, TermInEveryDocumentHasZeroWeight) {
  TfIdfOptions options;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.fit(tiny_corpus());
  const auto v = model.transform(doc({{0, 100}, {1, 1}}));
  // Term 0 appears in all documents => idf = 0 => weight 0.
  EXPECT_EQ(v.at(0), 0.0);
  EXPECT_GT(v.at(1), 0.0);
}

TEST(TfIdf, UnseenTermGetsZeroWeight) {
  TfIdfOptions options;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.fit(tiny_corpus());
  const auto v = model.transform(doc({{55, 10}, {1, 1}}));
  EXPECT_EQ(v.at(55), 0.0);
}

TEST(TfIdf, TfIsNormalizedByDocumentLength) {
  TfIdfOptions options;
  options.weighting = Weighting::kTf;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.fit(tiny_corpus());
  const auto v = model.transform(doc({{1, 3}, {2, 1}}));
  EXPECT_NEAR(v.at(1), 0.75, 1e-12);
  EXPECT_NEAR(v.at(2), 0.25, 1e-12);
}

// The paper's key normalization property: scaling every count by the same
// factor (a longer run of the same behavior) leaves tf — and hence the
// signature — unchanged.
TEST(TfIdf, DurationInvariance) {
  TfIdfModel model;
  model.fit(tiny_corpus());
  const auto short_run = model.transform(doc({{1, 3}, {2, 9}}));
  const auto long_run = model.transform(doc({{1, 30}, {2, 90}}));
  EXPECT_NEAR(cosine_similarity(short_run, long_run), 1.0, 1e-12);
}

TEST(TfIdf, RawCountWeighting) {
  TfIdfOptions options;
  options.weighting = Weighting::kRawCount;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.fit(tiny_corpus());
  const auto v = model.transform(doc({{1, 7}, {2, 2}}));
  EXPECT_DOUBLE_EQ(v.at(1), 7.0);
  EXPECT_DOUBLE_EQ(v.at(2), 2.0);
}

TEST(TfIdf, L2NormalizeProducesUnitVectors) {
  TfIdfModel model;  // default: tf-idf + normalize
  model.fit(tiny_corpus());
  const auto v = model.transform(doc({{1, 3}, {2, 1}}));
  EXPECT_NEAR(v.norm_l2(), 1.0, 1e-12);
}

TEST(TfIdf, SmoothIdfKeepsUbiquitousTerms) {
  TfIdfOptions options;
  options.smooth_idf = true;
  options.l2_normalize = false;
  TfIdfModel model(options);
  model.fit(tiny_corpus());
  // log(1 + 3/3) = log 2 > 0: the term survives.
  EXPECT_NEAR(model.idf(0), std::log(2.0), 1e-12);
}

TEST(TfIdf, SublinearTfDampensHeavyTerms) {
  TfIdfOptions plain;
  plain.weighting = Weighting::kTf;
  plain.l2_normalize = false;
  TfIdfOptions sublinear = plain;
  sublinear.sublinear_tf = true;

  TfIdfModel plain_model(plain);
  TfIdfModel sub_model(sublinear);
  Corpus corpus = tiny_corpus();
  plain_model.fit(corpus);
  sub_model.fit(corpus);

  const auto heavy = doc({{1, 1000}, {2, 1}});
  const double plain_ratio =
      plain_model.transform(heavy).at(1) / plain_model.transform(heavy).at(2);
  const double sub_ratio =
      sub_model.transform(heavy).at(1) / sub_model.transform(heavy).at(2);
  EXPECT_GT(plain_ratio, sub_ratio);
}

TEST(TfIdf, TransformCorpusPreservesOrder) {
  TfIdfModel model;
  const Corpus corpus = tiny_corpus();
  const auto vectors = model.fit_transform(corpus);
  ASSERT_EQ(vectors.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(vectors[i], model.transform(corpus[i])) << "doc " << i;
  }
}

TEST(TfIdf, FitTransformEqualsFitThenTransform) {
  TfIdfModel a;
  TfIdfModel b;
  const Corpus corpus = tiny_corpus();
  const auto via_fit_transform = a.fit_transform(corpus);
  b.fit(corpus);
  const auto via_two_steps = b.transform(corpus);
  EXPECT_EQ(via_fit_transform, via_two_steps);
}

// Parameterized property sweep over random corpora.
class TfIdfProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Corpus random_corpus(util::Rng& rng, std::size_t docs = 12,
                       std::size_t terms = 40) {
    Corpus corpus;
    for (std::size_t d = 0; d < docs; ++d) {
      std::vector<std::pair<CountDocument::TermId, CountDocument::Count>> counts;
      for (std::size_t t = 0; t < terms; ++t) {
        if (rng.bernoulli(0.3)) {
          counts.emplace_back(static_cast<CountDocument::TermId>(t),
                              1 + rng.below(100));
        }
      }
      if (counts.empty()) counts.emplace_back(0, 1);
      corpus.add(CountDocument::from_counts(std::move(counts)));
    }
    return corpus;
  }
};

TEST_P(TfIdfProperties, WeightsNonNegative) {
  util::Rng rng(GetParam());
  TfIdfModel model;
  const auto corpus = random_corpus(rng);
  for (const auto& v : model.fit_transform(corpus)) {
    for (const double value : v.values()) EXPECT_GE(value, 0.0);
  }
}

TEST_P(TfIdfProperties, IdfMonotoneInDocumentFrequency) {
  util::Rng rng(GetParam() ^ 0x55ULL);
  TfIdfModel model;
  model.fit(random_corpus(rng));
  // Any pair of seen terms: higher df => lower-or-equal idf.
  for (CountDocument::TermId a = 0; a < 40; ++a) {
    for (CountDocument::TermId b = 0; b < 40; ++b) {
      const auto dfa = model.document_frequency(a);
      const auto dfb = model.document_frequency(b);
      if (dfa == 0 || dfb == 0) continue;
      if (dfa > dfb) {
        EXPECT_LE(model.idf(a), model.idf(b) + 1e-12);
      }
    }
  }
}

TEST_P(TfIdfProperties, NormalizedVectorsOnUnitBall) {
  util::Rng rng(GetParam() ^ 0x77ULL);
  TfIdfModel model;
  for (const auto& v : model.fit_transform(random_corpus(rng))) {
    if (!v.empty()) {
      EXPECT_NEAR(v.norm_l2(), 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TfIdfProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fmeter::vsm
