#include "ml/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

std::vector<vsm::SparseVector> two_blobs(std::size_t per_blob,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> points;
  for (int blob = 0; blob < 2; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      std::vector<vsm::SparseVector::Entry> entries;
      for (int d = 0; d < 6; ++d) {
        entries.emplace_back(d, (blob == 0 ? 0.0 : 10.0) + rng.normal(0.0, 0.4));
      }
      points.push_back(vsm::SparseVector::from_entries(std::move(entries)));
    }
  }
  return points;
}

TEST(Hierarchical, SinglePointDegenerateTree) {
  const auto tree = agglomerate(two_blobs(1, 1));  // 2 points actually
  EXPECT_EQ(tree.num_leaves, 2u);
  EXPECT_EQ(tree.merges.size(), 1u);
}

TEST(Hierarchical, EmptyThrows) {
  EXPECT_THROW(agglomerate({}), std::invalid_argument);
}

TEST(Hierarchical, MergeCountIsNMinusOne) {
  const auto points = two_blobs(10, 2);
  const auto tree = agglomerate(points);
  EXPECT_EQ(tree.merges.size(), points.size() - 1);
}

// Figure 4's headline property: with two well-separated classes, the split
// immediately below the root separates them perfectly.
TEST(Hierarchical, PerfectRootSplitOnTwoClasses) {
  const auto points = two_blobs(10, 3);
  const auto tree = agglomerate(points);
  const auto& root = tree.merges.back();
  const auto left = tree.leaves_under(root.left);
  const auto right = tree.leaves_under(root.right);
  // One side must be exactly {0..9}, the other {10..19}.
  auto is_first_blob = [](std::span<const std::size_t> leaves) {
    return std::all_of(leaves.begin(), leaves.end(),
                       [](std::size_t leaf) { return leaf < 10; });
  };
  EXPECT_TRUE((is_first_blob(left) && !is_first_blob(right) &&
               left.size() == 10) ||
              (is_first_blob(right) && !is_first_blob(left) &&
               right.size() == 10));
}

TEST(Hierarchical, CutTwoMatchesClasses) {
  const auto points = two_blobs(8, 4);
  std::vector<int> labels(16);
  for (int i = 0; i < 16; ++i) labels[i] = i < 8 ? 0 : 1;
  for (const auto linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    HierarchicalConfig config;
    config.linkage = linkage;
    const auto tree = agglomerate(points, config);
    const auto assignments = tree.cut(2);
    EXPECT_DOUBLE_EQ(cluster_purity(assignments, labels), 1.0)
        << linkage_name(linkage);
  }
}

TEST(Hierarchical, CutKProducesKClusters) {
  const auto points = two_blobs(10, 5);
  const auto tree = agglomerate(points);
  for (std::size_t k = 1; k <= points.size(); ++k) {
    const auto assignments = tree.cut(k);
    std::set<std::size_t> used(assignments.begin(), assignments.end());
    EXPECT_EQ(used.size(), k) << "k=" << k;
  }
}

TEST(Hierarchical, CutOutOfRangeThrows) {
  const auto tree = agglomerate(two_blobs(3, 6));
  EXPECT_THROW(tree.cut(0), std::invalid_argument);
  EXPECT_THROW(tree.cut(7), std::invalid_argument);
}

TEST(Hierarchical, SingleLinkageHeightsNonDecreasing) {
  const auto points = two_blobs(10, 7);
  const auto tree = agglomerate(points);
  for (std::size_t m = 1; m < tree.merges.size(); ++m) {
    EXPECT_GE(tree.merges[m].height, tree.merges[m - 1].height - 1e-12);
  }
}

TEST(Hierarchical, CompleteLinkageGrowsFasterThanSingle) {
  const auto points = two_blobs(8, 8);
  HierarchicalConfig single;
  single.linkage = Linkage::kSingle;
  HierarchicalConfig complete;
  complete.linkage = Linkage::kComplete;
  const auto s = agglomerate(points, single);
  const auto c = agglomerate(points, complete);
  EXPECT_LE(s.merges.back().height, c.merges.back().height + 1e-12);
}

TEST(Hierarchical, ParenStringContainsAllLeaves) {
  const auto points = two_blobs(5, 9);
  const auto tree = agglomerate(points);
  const std::string rendered = tree.to_paren_string();
  for (std::size_t leaf = 0; leaf < points.size(); ++leaf) {
    EXPECT_NE(rendered.find(std::to_string(leaf)), std::string::npos)
        << rendered;
  }
  // Balanced parentheses, n-1 pairs.
  const auto opens = std::count(rendered.begin(), rendered.end(), '(');
  const auto closes = std::count(rendered.begin(), rendered.end(), ')');
  EXPECT_EQ(opens, closes);
  EXPECT_EQ(static_cast<std::size_t>(opens), tree.merges.size());
}

TEST(Hierarchical, LeavesUnderRootIsEverything) {
  const auto points = two_blobs(6, 10);
  const auto tree = agglomerate(points);
  auto leaves = tree.leaves_under(tree.merges.back().id);
  std::sort(leaves.begin(), leaves.end());
  ASSERT_EQ(leaves.size(), points.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) EXPECT_EQ(leaves[i], i);
}

TEST(Hierarchical, LeavesUnderBadNodeThrows) {
  const auto tree = agglomerate(two_blobs(3, 11));
  EXPECT_THROW(tree.leaves_under(999), std::out_of_range);
}

TEST(PairwiseDistances, SymmetricZeroDiagonal) {
  const auto points = two_blobs(4, 12);
  const auto dist = pairwise_distances(points);
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(dist[i * n + i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(dist[i * n + j], dist[j * n + i]);
    }
  }
}

TEST(LinkageName, AllNamed) {
  EXPECT_STREQ(linkage_name(Linkage::kSingle), "single");
  EXPECT_STREQ(linkage_name(Linkage::kComplete), "complete");
  EXPECT_STREQ(linkage_name(Linkage::kAverage), "average");
}

}  // namespace
}  // namespace fmeter::ml
