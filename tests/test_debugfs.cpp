#include "trace/debugfs.hpp"

#include <gtest/gtest.h>

namespace fmeter::trace {
namespace {

TEST(DebugFs, RegisterAndRead) {
  DebugFs fs;
  fs.register_file("a/b", [] { return std::string("hello"); });
  EXPECT_TRUE(fs.exists("a/b"));
  EXPECT_EQ(fs.read("a/b"), "hello");
}

TEST(DebugFs, ReadMissingThrows) {
  DebugFs fs;
  EXPECT_THROW(fs.read("nope"), DebugFsError);
}

TEST(DebugFs, WriteHandlerInvoked) {
  DebugFs fs;
  std::string captured;
  fs.register_file(
      "ctl", [] { return std::string("state"); },
      [&captured](std::string_view data) { captured = std::string(data); });
  fs.write("ctl", "42");
  EXPECT_EQ(captured, "42");
}

TEST(DebugFs, WriteToReadOnlyThrows) {
  DebugFs fs;
  fs.register_file("ro", [] { return std::string(); });
  EXPECT_THROW(fs.write("ro", "x"), DebugFsError);
}

TEST(DebugFs, WriteMissingThrows) {
  DebugFs fs;
  EXPECT_THROW(fs.write("missing", "x"), DebugFsError);
}

TEST(DebugFs, ReRegistrationReplaces) {
  DebugFs fs;
  fs.register_file("f", [] { return std::string("one"); });
  fs.register_file("f", [] { return std::string("two"); });
  EXPECT_EQ(fs.read("f"), "two");
}

TEST(DebugFs, Unregister) {
  DebugFs fs;
  fs.register_file("gone", [] { return std::string(); });
  fs.unregister("gone");
  EXPECT_FALSE(fs.exists("gone"));
}

TEST(DebugFs, ListSorted) {
  DebugFs fs;
  fs.register_file("z", [] { return std::string(); });
  fs.register_file("a", [] { return std::string(); });
  fs.register_file("m", [] { return std::string(); });
  const auto paths = fs.list();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "a");
  EXPECT_EQ(paths[1], "m");
  EXPECT_EQ(paths[2], "z");
}

TEST(DebugFs, ReadReflectsLiveState) {
  DebugFs fs;
  int counter = 0;
  fs.register_file("counter",
                   [&counter] { return std::to_string(counter); });
  EXPECT_EQ(fs.read("counter"), "0");
  counter = 7;
  EXPECT_EQ(fs.read("counter"), "7");
}

}  // namespace
}  // namespace fmeter::trace
