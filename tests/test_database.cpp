#include "fmeter/database.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace fmeter::core {
namespace {

vsm::SparseVector vec(std::vector<vsm::SparseVector::Entry> entries) {
  return vsm::SparseVector::from_entries(std::move(entries)).l2_normalized();
}

SignatureDatabase three_class_db() {
  SignatureDatabase db;
  // Class "a" lives on axis 0, "b" on axis 1, "c" on axis 2, with jitter.
  db.add(vec({{0, 1.0}, {1, 0.05}}), "a");
  db.add(vec({{0, 1.0}, {2, 0.04}}), "a");
  db.add(vec({{1, 1.0}, {0, 0.06}}), "b");
  db.add(vec({{1, 1.0}, {2, 0.05}}), "b");
  db.add(vec({{2, 1.0}, {0, 0.03}}), "c");
  db.add(vec({{2, 1.0}, {1, 0.02}}), "c");
  return db;
}

TEST(SignatureDatabase, AddAndAccess) {
  SignatureDatabase db;
  const auto id = db.add(vec({{0, 1.0}}), "label");
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.label(0), "label");
  EXPECT_FALSE(db.empty());
}

TEST(SignatureDatabase, DistinctLabelsFirstSeenOrder) {
  const auto db = three_class_db();
  const auto labels = db.distinct_labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "a");
  EXPECT_EQ(labels[1], "b");
  EXPECT_EQ(labels[2], "c");
}

TEST(SignatureDatabase, SearchReturnsNearestFirst) {
  const auto db = three_class_db();
  const auto hits = db.search(vec({{1, 1.0}}), 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].label, "b");
  EXPECT_EQ(hits[1].label, "b");
  EXPECT_GE(hits[0].score, hits[1].score);
  EXPECT_GE(hits[1].score, hits[2].score);
}

TEST(SignatureDatabase, SearchKLargerThanDbClamps) {
  const auto db = three_class_db();
  EXPECT_EQ(db.search(vec({{0, 1.0}}), 100).size(), db.size());
}

TEST(SignatureDatabase, EuclideanSearchAgrees) {
  const auto db = three_class_db();
  const auto hits =
      db.search(vec({{2, 1.0}}), 2, SimilarityMetric::kEuclidean);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].label, "c");
  EXPECT_LE(hits[0].score, 0.0);  // negative distance convention
}

TEST(SignatureDatabase, SyndromesArePerLabelCentroids) {
  const auto db = three_class_db();
  const auto syndromes = db.syndromes();
  ASSERT_EQ(syndromes.size(), 3u);
  for (const auto& syndrome : syndromes) {
    EXPECT_EQ(syndrome.support, 2u);
    EXPECT_FALSE(syndrome.centroid.empty());
  }
  // Centroid of "a" must point mostly along axis 0.
  EXPECT_GT(syndromes[0].centroid.at(0), 0.9);
}

TEST(SignatureDatabase, ClassifyBySyndrome) {
  const auto db = three_class_db();
  EXPECT_EQ(db.classify_by_syndrome(vec({{0, 1.0}, {1, 0.1}})), "a");
  EXPECT_EQ(db.classify_by_syndrome(vec({{1, 1.0}})), "b");
  EXPECT_EQ(db.classify_by_syndrome(vec({{2, 1.0}}),
                                    SimilarityMetric::kEuclidean),
            "c");
}

TEST(SignatureDatabase, ClassifyOnEmptyDbIsEmpty) {
  SignatureDatabase db;
  EXPECT_EQ(db.classify_by_syndrome(vec({{0, 1.0}})), "");
}

TEST(SignatureDatabase, MetaClusterGroupsSimilarClasses) {
  SignatureDatabase db;
  // Two "file I/O-ish" classes on overlapping axes, one networking class.
  db.add(vec({{0, 1.0}, {1, 0.8}}), "dbench");
  db.add(vec({{0, 0.9}, {1, 1.0}}), "kcompile-link");
  db.add(vec({{5, 1.0}, {6, 0.7}}), "netperf");
  const auto assignments = db.meta_cluster(2, 1);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0], assignments[1]);  // the two I/O classes merge
  EXPECT_NE(assignments[0], assignments[2]);  // networking stands apart
}

TEST(SignatureDatabase, BruteForcePolicyMatchesIndexedDefault) {
  const auto db = three_class_db();
  const auto query = vec({{1, 1.0}, {0, 0.2}});
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const auto indexed = db.search(query, 4, metric);  // default policy
    const auto scanned =
        db.search(query, 4, metric, ScanPolicy::kBruteForce);
    ASSERT_EQ(indexed.size(), scanned.size());
    for (std::size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i].id, scanned[i].id);
      EXPECT_EQ(indexed[i].label, scanned[i].label);
      EXPECT_EQ(indexed[i].score, scanned[i].score);
    }
  }
}

TEST(SignatureDatabase, IndexTracksAdds) {
  SignatureDatabase db;
  EXPECT_EQ(db.index().size(), 0u);
  db.add(vec({{0, 1.0}, {3, 0.5}}), "x");
  db.add(vec({{3, 1.0}}), "y");
  EXPECT_EQ(db.index().size(), 2u);
  EXPECT_EQ(db.index().num_terms(), 2u);
  EXPECT_EQ(db.index().num_postings(), 3u);
}

TEST(SignatureDatabase, SyndromeCacheInvalidatedByAdd) {
  auto db = three_class_db();
  EXPECT_EQ(db.syndromes().size(), 3u);
  db.add(vec({{5, 1.0}}), "d");
  const auto syndromes = db.syndromes();
  ASSERT_EQ(syndromes.size(), 4u);
  EXPECT_EQ(syndromes[3].label, "d");
  EXPECT_EQ(db.classify_by_syndrome(vec({{5, 1.0}})), "d");
}

TEST(SignatureDatabase, MetaClusterTooFewSyndromesThrows) {
  SignatureDatabase db;
  db.add(vec({{0, 1.0}}), "only");
  EXPECT_THROW(db.meta_cluster(2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// add_batch failure atomicity (the tightened contract: *validation*
// failures — mismatched sizes, malformed signatures — happen before any
// mutation, so the database stays unchanged and fully usable).
// ---------------------------------------------------------------------------

/// Asserts the database still holds exactly the three-class contents and
/// answers queries identically to a freshly built copy.
void expect_three_class_db_intact(SignatureDatabase& db,
                                  const std::string& context) {
  const SignatureDatabase reference = three_class_db();
  ASSERT_EQ(db.size(), reference.size()) << context;
  for (std::size_t id = 0; id < reference.size(); ++id) {
    EXPECT_EQ(db.label(id), reference.label(id)) << context;
    EXPECT_TRUE(db.signature(id) == reference.signature(id)) << context;
  }
  const auto query = vec({{0, 1.0}, {1, 0.2}});
  const auto got = db.search(query, 3);
  const auto want = reference.search(query, 3);
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(got[r].id, want[r].id) << context;
    EXPECT_EQ(got[r].score, want[r].score) << context;
  }
  // Still accepts new work after the failure.
  db.add(vec({{7, 1.0}}), "after");
  EXPECT_EQ(db.size(), reference.size() + 1) << context;
  EXPECT_EQ(db.search(vec({{7, 1.0}}), 1)[0].label, "after") << context;
}

TEST(SignatureDatabase, AddBatchSizeMismatchLeavesDatabaseUntouched) {
  auto db = three_class_db();
  EXPECT_THROW(db.add_batch({vec({{0, 1.0}}), vec({{1, 1.0}})}, {"x"}),
               std::invalid_argument);
  expect_three_class_db_intact(db, "size mismatch");
}

TEST(SignatureDatabase, AddBatchMalformedSignatureMidBatchLeavesDatabaseUntouched) {
  // A NaN/Inf weight mid-batch would poison the norms and per-term bounds
  // every search relies on; the batch is rejected up front instead, naming
  // the offender, with nothing mutated — including the entries *before*
  // the malformed one.
  const auto nan_doc = vsm::SparseVector::from_entries(
      {{3, std::numeric_limits<double>::quiet_NaN()}});
  const auto inf_doc = vsm::SparseVector::from_entries(
      {{4, std::numeric_limits<double>::infinity()}});
  for (const auto& bad : {nan_doc, inf_doc}) {
    auto db = three_class_db();
    std::vector<vsm::SparseVector> batch = {vec({{0, 1.0}}), bad,
                                            vec({{1, 1.0}})};
    std::vector<std::string> labels = {"ok", "bad", "ok"};
    try {
      db.add_batch(std::move(batch), std::move(labels));
      FAIL() << "malformed batch accepted";
    } catch (const std::invalid_argument& error) {
      // The diagnostic names the offending batch position.
      EXPECT_NE(std::string(error.what()).find("signature 1"),
                std::string::npos)
          << error.what();
    }
    expect_three_class_db_intact(db, "malformed signature");
  }
}

TEST(SignatureDatabase, ScalarAddRejectsNonFiniteWeightsLikeAddBatch) {
  // add() and add_batch() enforce the same invariant: otherwise a database
  // built by scalar adds could save() a snapshot its own load() refuses.
  auto db = three_class_db();
  EXPECT_THROW(db.add(vsm::SparseVector::from_entries(
                          {{3, std::numeric_limits<double>::quiet_NaN()}}),
                      "bad"),
               std::invalid_argument);
  EXPECT_THROW(db.add(vsm::SparseVector::from_entries(
                          {{3, std::numeric_limits<double>::infinity()}}),
                      "bad"),
               std::invalid_argument);
  expect_three_class_db_intact(db, "scalar add of non-finite weight");
}

TEST(SignatureDatabase, AddBatchValidBatchAfterRejectedOneWorks) {
  auto db = three_class_db();
  EXPECT_THROW(db.add_batch({vsm::SparseVector::from_entries(
                                {{2, std::numeric_limits<double>::quiet_NaN()}})},
                            {"bad"}),
               std::invalid_argument);
  const std::size_t first =
      db.add_batch({vec({{8, 1.0}}), vec({{9, 1.0}})}, {"d", "e"});
  EXPECT_EQ(first, 6u);
  EXPECT_EQ(db.size(), 8u);
  EXPECT_EQ(db.search(vec({{9, 1.0}}), 1)[0].label, "e");
}

}  // namespace
}  // namespace fmeter::core
