#include "ml/multiclass.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

std::vector<OneVsRestSvm::Example> three_class_data(std::size_t per_class,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<OneVsRestSvm::Example> out;
  const char* labels[] = {"alpha", "beta", "gamma"};
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<vsm::SparseVector::Entry> entries;
      for (int d = 0; d < 4; ++d) {
        const double center = d == cls ? 2.0 : 0.0;
        entries.emplace_back(d, center + rng.normal(0.0, 0.2));
      }
      out.push_back({vsm::SparseVector::from_entries(std::move(entries))
                         .l2_normalized(),
                     labels[cls]});
    }
  }
  return out;
}

TEST(OneVsRestSvm, ClassifiesThreeSeparableClasses) {
  const auto data = three_class_data(25, 1);
  OneVsRestSvm classifier;
  classifier.fit(data);
  EXPECT_EQ(classifier.classes().size(), 3u);
  std::size_t correct = 0;
  for (const auto& example : data) {
    correct += classifier.classify(example.x) == example.label;
  }
  EXPECT_EQ(correct, data.size());
}

TEST(OneVsRestSvm, GeneralizesToUnseenPoints) {
  OneVsRestSvm classifier;
  classifier.fit(three_class_data(25, 2));
  const auto fresh = three_class_data(10, 3);
  std::size_t correct = 0;
  for (const auto& example : fresh) {
    correct += classifier.classify(example.x) == example.label;
  }
  EXPECT_GE(correct, fresh.size() - 2);
}

TEST(OneVsRestSvm, DecisionValueHighestForOwnClass) {
  const auto data = three_class_data(20, 4);
  OneVsRestSvm classifier;
  classifier.fit(data);
  const auto& example = data.front();  // class "alpha"
  const double own = classifier.decision_value(example.x, "alpha");
  EXPECT_GT(own, classifier.decision_value(example.x, "beta"));
  EXPECT_GT(own, classifier.decision_value(example.x, "gamma"));
}

TEST(OneVsRestSvm, ErrorsOnMisuse) {
  OneVsRestSvm classifier;
  EXPECT_THROW(classifier.classify(vsm::SparseVector{}), std::logic_error);
  std::vector<OneVsRestSvm::Example> one_class = {
      {vsm::SparseVector::from_entries({{0, 1.0}}), "only"},
      {vsm::SparseVector::from_entries({{1, 1.0}}), "only"},
  };
  EXPECT_THROW(classifier.fit(one_class), std::invalid_argument);
  classifier.fit(three_class_data(10, 5));
  EXPECT_THROW(classifier.decision_value(vsm::SparseVector{}, "nope"),
               std::out_of_range);
}

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix matrix({"a", "b"});
  matrix.add("a", "a");
  matrix.add("a", "a");
  matrix.add("a", "b");
  matrix.add("b", "b");
  EXPECT_EQ(matrix.count("a", "a"), 2u);
  EXPECT_EQ(matrix.count("a", "b"), 1u);
  EXPECT_EQ(matrix.total(), 4u);
  EXPECT_DOUBLE_EQ(matrix.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PerClassPrecisionRecall) {
  ConfusionMatrix matrix({"a", "b"});
  // a: 8 right, 2 predicted as b; b: 9 right, 1 predicted as a.
  for (int i = 0; i < 8; ++i) matrix.add("a", "a");
  for (int i = 0; i < 2; ++i) matrix.add("a", "b");
  for (int i = 0; i < 9; ++i) matrix.add("b", "b");
  matrix.add("b", "a");
  EXPECT_DOUBLE_EQ(matrix.recall("a"), 0.8);
  EXPECT_DOUBLE_EQ(matrix.precision("a"), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(matrix.recall("b"), 0.9);
  EXPECT_DOUBLE_EQ(matrix.precision("b"), 9.0 / 11.0);
  EXPECT_GT(matrix.macro_f1(), 0.8);
  EXPECT_LE(matrix.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, EmptyClassConventions) {
  ConfusionMatrix matrix({"a", "b"});
  matrix.add("a", "a");
  // 'b' never appears: vacuous precision/recall of 1.
  EXPECT_DOUBLE_EQ(matrix.precision("b"), 1.0);
  EXPECT_DOUBLE_EQ(matrix.recall("b"), 1.0);
}

TEST(ConfusionMatrix, UnknownLabelThrows) {
  ConfusionMatrix matrix({"a"});
  EXPECT_THROW(matrix.add("x", "a"), std::out_of_range);
  EXPECT_THROW(matrix.count("a", "x"), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix({}), std::invalid_argument);
}

TEST(ConfusionMatrix, RenderingContainsAllClasses) {
  ConfusionMatrix matrix({"scp", "dbench"});
  matrix.add("scp", "dbench");
  const std::string text = matrix.to_string();
  EXPECT_NE(text.find("scp"), std::string::npos);
  EXPECT_NE(text.find("dbench"), std::string::npos);
}

TEST(ConfusionMatrix, EndToEndWithClassifier) {
  const auto train = three_class_data(25, 6);
  const auto test = three_class_data(12, 7);
  OneVsRestSvm classifier;
  classifier.fit(train);
  ConfusionMatrix matrix(classifier.classes());
  for (const auto& example : test) {
    matrix.add(example.label, classifier.classify(example.x));
  }
  EXPECT_GE(matrix.accuracy(), 0.9);
  EXPECT_GE(matrix.macro_f1(), 0.9);
}

}  // namespace
}  // namespace fmeter::ml
