#include "fmeter/retrieval.hpp"

#include <gtest/gtest.h>

namespace fmeter::core {
namespace {

vsm::SparseVector vec(std::vector<vsm::SparseVector::Entry> entries) {
  return vsm::SparseVector::from_entries(std::move(entries)).l2_normalized();
}

SignatureDatabase axis_db() {
  SignatureDatabase db;
  db.add(vec({{0, 1.0}, {1, 0.05}}), "a");
  db.add(vec({{0, 1.0}, {2, 0.04}}), "a");
  db.add(vec({{0, 0.9}, {1, 0.10}}), "a");
  db.add(vec({{1, 1.0}, {0, 0.06}}), "b");
  db.add(vec({{1, 1.0}, {2, 0.02}}), "b");
  db.add(vec({{1, 0.95}, {0, 0.03}}), "b");
  return db;
}

TEST(Retrieval, PerfectSeparationScoresPerfectly) {
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {
      {vec({{0, 1.0}}), "a"},
      {vec({{1, 1.0}}), "b"},
  };
  const auto quality = evaluate_retrieval(db, queries, 3);
  EXPECT_DOUBLE_EQ(quality.precision_at_k, 1.0);
  EXPECT_DOUBLE_EQ(quality.mean_reciprocal_rank, 1.0);
  EXPECT_DOUBLE_EQ(quality.top1_accuracy, 1.0);
  EXPECT_EQ(quality.num_queries, 2u);
  EXPECT_EQ(quality.k, 3u);
}

TEST(Retrieval, WrongLabelScoresZero) {
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {
      {vec({{0, 1.0}}), "no-such-label"},
  };
  const auto quality = evaluate_retrieval(db, queries, 3);
  EXPECT_DOUBLE_EQ(quality.precision_at_k, 0.0);
  EXPECT_DOUBLE_EQ(quality.mean_reciprocal_rank, 0.0);
  EXPECT_DOUBLE_EQ(quality.top1_accuracy, 0.0);
}

TEST(Retrieval, PartialPrecisionHandComputed) {
  // Query near axis 0 but k=5 > the 3 'a' entries: 3 relevant of 5.
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {{vec({{0, 1.0}}), "a"}};
  const auto quality = evaluate_retrieval(db, queries, 5);
  EXPECT_DOUBLE_EQ(quality.precision_at_k, 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(quality.mean_reciprocal_rank, 1.0);
}

TEST(Retrieval, ReciprocalRankBelowOneWhenFirstHitWrong) {
  SignatureDatabase db;
  db.add(vec({{0, 1.0}}), "other");           // exact match, wrong label
  db.add(vec({{0, 0.9}, {1, 0.3}}), "right"); // near match, right label
  const std::vector<RetrievalQuery> queries = {{vec({{0, 1.0}}), "right"}};
  const auto quality = evaluate_retrieval(db, queries, 2);
  EXPECT_DOUBLE_EQ(quality.mean_reciprocal_rank, 0.5);
  EXPECT_DOUBLE_EQ(quality.top1_accuracy, 0.0);
}

TEST(Retrieval, EuclideanMetricSupported) {
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {{vec({{1, 1.0}}), "b"}};
  const auto quality =
      evaluate_retrieval(db, queries, 3, SimilarityMetric::kEuclidean);
  EXPECT_DOUBLE_EQ(quality.precision_at_k, 1.0);
}

TEST(Retrieval, PoliciesProduceIdenticalQuality) {
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {
      {vec({{0, 1.0}}), "a"},
      {vec({{1, 1.0}}), "b"},
      {vec({{0, 0.7}, {1, 0.7}}), "a"},
  };
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const auto indexed =
        evaluate_retrieval(db, queries, 4, metric, ScanPolicy::kIndexed);
    const auto scanned =
        evaluate_retrieval(db, queries, 4, metric, ScanPolicy::kBruteForce);
    EXPECT_DOUBLE_EQ(indexed.precision_at_k, scanned.precision_at_k);
    EXPECT_DOUBLE_EQ(indexed.mean_reciprocal_rank,
                     scanned.mean_reciprocal_rank);
    EXPECT_DOUBLE_EQ(indexed.top1_accuracy, scanned.top1_accuracy);
  }
}

TEST(Retrieval, InvalidInputsThrow) {
  const auto db = axis_db();
  const std::vector<RetrievalQuery> queries = {{vec({{0, 1.0}}), "a"}};
  EXPECT_THROW(evaluate_retrieval(SignatureDatabase{}, queries, 3),
               std::invalid_argument);
  EXPECT_THROW(evaluate_retrieval(db, {}, 3), std::invalid_argument);
  EXPECT_THROW(evaluate_retrieval(db, queries, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fmeter::core
