#include "fmeter/collector.hpp"

#include <gtest/gtest.h>

#include "fmeter/system.hpp"

namespace fmeter::core {
namespace {

SystemConfig small_system() {
  SystemConfig config;
  config.kernel.symbols.total_functions = 900;
  config.kernel.num_cpus = 2;
  return config;
}

class CollectorTest : public ::testing::Test {
 protected:
  CollectorTest() : system_(small_system()), collector_(system_.debugfs()) {}

  MonitoredSystem system_;
  SignatureCollector collector_;
};

TEST_F(CollectorTest, IntervalDiffMatchesActivity) {
  auto& kernel = system_.kernel();
  auto& cpu = kernel.cpu(0);
  const auto fn = kernel.id_of("vfs_read");

  // Activity before the interval must not leak in.
  for (int i = 0; i < 50; ++i) kernel.invoke(cpu, fn);

  collector_.begin_interval();
  for (int i = 0; i < 7; ++i) kernel.invoke(cpu, fn);
  const auto doc = collector_.end_interval("test", 10.0);

  EXPECT_EQ(doc.count_of(fn), 7u);
  EXPECT_EQ(doc.label, "test");
  EXPECT_DOUBLE_EQ(doc.duration_s, 10.0);
}

TEST_F(CollectorTest, EndWithoutBeginThrows) {
  EXPECT_THROW(collector_.end_interval("x", 1.0), std::logic_error);
  EXPECT_FALSE(collector_.interval_open());
}

TEST_F(CollectorTest, IntervalOpenLifecycle) {
  collector_.begin_interval();
  EXPECT_TRUE(collector_.interval_open());
  collector_.end_interval("x", 1.0);
  EXPECT_FALSE(collector_.interval_open());
}

TEST_F(CollectorTest, RollIntervalChainsWithoutGaps) {
  auto& kernel = system_.kernel();
  auto& cpu = kernel.cpu(0);
  const auto fn = kernel.id_of("kmalloc");

  collector_.begin_interval();
  for (int i = 0; i < 3; ++i) kernel.invoke(cpu, fn);
  const auto first = collector_.roll_interval("a", 1.0);
  for (int i = 0; i < 5; ++i) kernel.invoke(cpu, fn);
  const auto second = collector_.roll_interval("b", 1.0);

  EXPECT_EQ(first.count_of(fn), 3u);
  EXPECT_EQ(second.count_of(fn), 5u);
  EXPECT_TRUE(collector_.interval_open());  // still rolling
}

TEST_F(CollectorTest, MultiCpuActivityAggregated) {
  auto& kernel = system_.kernel();
  const auto fn = kernel.id_of("schedule");
  collector_.begin_interval();
  kernel.invoke(kernel.cpu(0), fn);
  kernel.invoke(kernel.cpu(1), fn);
  const auto doc = collector_.end_interval("smp", 1.0);
  EXPECT_EQ(doc.count_of(fn), 2u);
}

TEST_F(CollectorTest, QuiescentIntervalIsEmptyDocument) {
  collector_.begin_interval();
  const auto doc = collector_.end_interval("idle", 1.0);
  EXPECT_EQ(doc.total(), 0u);
}

TEST(Collector, MissingDebugfsPathThrows) {
  trace::DebugFs fs;
  SignatureCollector collector(fs, "does/not/exist");
  EXPECT_THROW(collector.begin_interval(), trace::DebugFsError);
}

}  // namespace
}  // namespace fmeter::core
