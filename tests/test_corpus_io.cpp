#include "vsm/corpus_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fmeter::vsm {
namespace {

Corpus sample_corpus() {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{0, 5}, {17, 2}}, "scp", 10.0));
  corpus.add(CountDocument::from_counts({{3, 1}}, "kcompile", 2.5));
  corpus.add(CountDocument::from_counts({}, "", 0.0));  // empty, unlabeled
  return corpus;
}

TEST(CorpusIo, StreamRoundTrip) {
  const Corpus original = sample_corpus();
  std::stringstream buffer;
  write_corpus(buffer, original);
  const Corpus loaded = read_corpus(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "doc " << i;
  }
}

TEST(CorpusIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/corpus_io_test.fmc";
  const Corpus original = sample_corpus();
  save_corpus(path, original);
  const Corpus loaded = load_corpus(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[0], original[0]);
  std::remove(path.c_str());
}

TEST(CorpusIo, RejectsBadMagic) {
  std::stringstream buffer("not-a-corpus\n");
  EXPECT_THROW(read_corpus(buffer), std::invalid_argument);
}

TEST(CorpusIo, RejectsTruncatedDocument) {
  std::stringstream buffer("fmeter-corpus v1\ndoc a 1.0 3\n1 2\n");
  EXPECT_THROW(read_corpus(buffer), std::invalid_argument);
}

TEST(CorpusIo, RejectsMalformedHeader) {
  std::stringstream buffer("fmeter-corpus v1\ndoc onlylabel\n");
  EXPECT_THROW(read_corpus(buffer), std::invalid_argument);
}

TEST(CorpusIo, RejectsMalformedEntry) {
  std::stringstream buffer("fmeter-corpus v1\ndoc a 1.0 1\nx y\n");
  EXPECT_THROW(read_corpus(buffer), std::invalid_argument);
}

TEST(CorpusIo, RejectsLabelWithSpace) {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{0, 1}}, "two words"));
  std::stringstream buffer;
  EXPECT_THROW(write_corpus(buffer, corpus), std::invalid_argument);
}

TEST(CorpusIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_corpus("/definitely/not/here.fmc"), std::runtime_error);
}

TEST(CorpusIo, EmptyCorpusRoundTrips) {
  std::stringstream buffer;
  write_corpus(buffer, Corpus{});
  EXPECT_EQ(read_corpus(buffer).size(), 0u);
}

TEST(CorpusIo, PreservesDurations) {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{1, 1}}, "x", 3.25));
  std::stringstream buffer;
  write_corpus(buffer, corpus);
  EXPECT_DOUBLE_EQ(read_corpus(buffer)[0].duration_s, 3.25);
}

}  // namespace
}  // namespace fmeter::vsm
