#include "vsm/document.hpp"

#include <gtest/gtest.h>

namespace fmeter::vsm {
namespace {

TEST(CountDocument, FromCountsSortsMergesDropsZeros) {
  const auto doc = CountDocument::from_counts(
      {{7, 2}, {3, 1}, {7, 3}, {5, 0}}, "label", 10.0);
  ASSERT_EQ(doc.counts.size(), 2u);
  EXPECT_EQ(doc.counts[0].first, 3u);
  EXPECT_EQ(doc.counts[0].second, 1u);
  EXPECT_EQ(doc.counts[1].first, 7u);
  EXPECT_EQ(doc.counts[1].second, 5u);
  EXPECT_EQ(doc.label, "label");
  EXPECT_DOUBLE_EQ(doc.duration_s, 10.0);
}

TEST(CountDocument, TotalAndDistinct) {
  const auto doc = CountDocument::from_counts({{1, 10}, {2, 20}, {9, 5}});
  EXPECT_EQ(doc.total(), 35u);
  EXPECT_EQ(doc.distinct_terms(), 3u);
}

TEST(CountDocument, CountOf) {
  const auto doc = CountDocument::from_counts({{4, 9}});
  EXPECT_EQ(doc.count_of(4), 9u);
  EXPECT_EQ(doc.count_of(5), 0u);
}

TEST(CountDocument, EmptyDocument) {
  const auto doc = CountDocument::from_counts({});
  EXPECT_EQ(doc.total(), 0u);
  EXPECT_EQ(doc.distinct_terms(), 0u);
}

TEST(Corpus, LabelsInFirstSeenOrder) {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{0, 1}}, "b"));
  corpus.add(CountDocument::from_counts({{0, 1}}, "a"));
  corpus.add(CountDocument::from_counts({{0, 1}}, "b"));
  const auto labels = corpus.labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "b");
  EXPECT_EQ(labels[1], "a");
}

TEST(Corpus, UnlabeledDocumentsIgnoredByLabels) {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{0, 1}}));
  EXPECT_TRUE(corpus.labels().empty());
}

TEST(Corpus, IndicesWithLabel) {
  Corpus corpus;
  corpus.add(CountDocument::from_counts({{0, 1}}, "x"));
  corpus.add(CountDocument::from_counts({{0, 1}}, "y"));
  corpus.add(CountDocument::from_counts({{0, 1}}, "x"));
  const auto indices = corpus.indices_with_label("x");
  ASSERT_EQ(indices.size(), 2u);
  EXPECT_EQ(indices[0], 0u);
  EXPECT_EQ(indices[1], 2u);
}

TEST(Corpus, DimensionBound) {
  Corpus corpus;
  EXPECT_EQ(corpus.dimension_bound(), 0u);
  corpus.add(CountDocument::from_counts({{3, 1}}));
  corpus.add(CountDocument::from_counts({{17, 1}}));
  EXPECT_EQ(corpus.dimension_bound(), 18u);
}

TEST(Corpus, AppendMerges) {
  Corpus a;
  a.add(CountDocument::from_counts({{0, 1}}, "a"));
  Corpus b;
  b.add(CountDocument::from_counts({{0, 1}}, "b"));
  b.add(CountDocument::from_counts({{0, 1}}, "c"));
  a.append(std::move(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2].label, "c");
}

}  // namespace
}  // namespace fmeter::vsm
