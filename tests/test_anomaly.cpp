#include "fmeter/anomaly.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fmeter::core {
namespace {

std::vector<vsm::SparseVector> cluster(double center, std::size_t n,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (int d = 0; d < 8; ++d) {
      entries.emplace_back(d, center + rng.normal(0.0, 0.05));
    }
    out.push_back(vsm::SparseVector::from_entries(std::move(entries))
                      .l2_normalized());
  }
  return out;
}

TEST(AnomalyDetector, NormalDataScoresBelowThreshold) {
  AnomalyDetector detector;
  const auto normal = cluster(1.0, 50, 1);
  detector.fit(normal);
  std::size_t alarms = 0;
  for (const auto& signature : cluster(1.0, 50, 2)) {
    alarms += detector.is_anomalous(signature);
  }
  EXPECT_LE(alarms, 3u);  // ~calibration quantile worth of false alarms
}

TEST(AnomalyDetector, ShiftedBehaviorFlagged) {
  AnomalyDetector detector;
  detector.fit(cluster(1.0, 50, 3));
  // A genuinely different direction in signature space.
  std::vector<vsm::SparseVector::Entry> odd;
  for (int d = 8; d < 16; ++d) odd.emplace_back(d, 1.0);
  const auto anomaly =
      vsm::SparseVector::from_entries(std::move(odd)).l2_normalized();
  EXPECT_TRUE(detector.is_anomalous(anomaly));
  EXPECT_GT(detector.score(anomaly), detector.threshold() * 2);
}

TEST(AnomalyDetector, ScoreMonotoneInDistance) {
  AnomalyDetector detector;
  detector.fit(cluster(1.0, 30, 4));
  // Blend increasing amounts of an orthogonal direction into a normal point.
  const auto normal = cluster(1.0, 1, 5)[0];
  double previous = -1.0;
  for (const double mix : {0.0, 0.3, 0.7, 1.5}) {
    auto blended = normal.plus(
        vsm::SparseVector::from_entries({{20, mix}}));
    const double s = detector.score(blended.l2_normalized());
    EXPECT_GT(s, previous);
    previous = s;
  }
}

TEST(AnomalyDetector, EuclideanMetricWorks) {
  AnomalyDetectorConfig config;
  config.metric = AnomalyMetric::kEuclidean;
  AnomalyDetector detector(config);
  detector.fit(cluster(1.0, 30, 6));
  EXPECT_FALSE(detector.is_anomalous(cluster(1.0, 1, 7)[0]));
  std::vector<vsm::SparseVector::Entry> far = {{30, 1.0}};
  EXPECT_TRUE(detector.is_anomalous(
      vsm::SparseVector::from_entries(std::move(far)).l2_normalized()));
}

TEST(AnomalyDetector, QuantileControlsThreshold) {
  const auto normal = cluster(1.0, 60, 8);
  AnomalyDetectorConfig strict;
  strict.calibration_quantile = 0.5;
  AnomalyDetectorConfig lax;
  lax.calibration_quantile = 1.0;
  AnomalyDetector strict_detector(strict);
  AnomalyDetector lax_detector(lax);
  strict_detector.fit(normal);
  lax_detector.fit(normal);
  EXPECT_LT(strict_detector.threshold(), lax_detector.threshold());
}

TEST(AnomalyDetector, ErrorsOnMisuse) {
  AnomalyDetector detector;
  EXPECT_THROW(detector.score(vsm::SparseVector{}), std::logic_error);
  const auto one = cluster(1.0, 1, 9);
  EXPECT_THROW(detector.fit(one), std::invalid_argument);
  EXPECT_FALSE(detector.fitted());
}

}  // namespace
}  // namespace fmeter::core
