// Tests for the §6 hot-function counter cache in FmeterTracer.
#include <gtest/gtest.h>

#include "simkern/kernel.hpp"
#include "trace/fmeter_tracer.hpp"
#include "util/rng.hpp"

namespace fmeter::trace {
namespace {

simkern::KernelConfig small_config() {
  simkern::KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = 2;
  return config;
}

FmeterTracerConfig hot_config(std::vector<simkern::FunctionId> hot) {
  FmeterTracerConfig config;
  config.hot_functions = std::move(hot);
  return config;
}

TEST(HotCache, DisabledByDefault) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), 2);
  EXPECT_EQ(tracer.hot_set_size(), 0u);
}

TEST(HotCache, StubsPointAtHotArray) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), 2, hot_config({5, 10, 20}));
  EXPECT_EQ(tracer.hot_set_size(), 3u);
  EXPECT_EQ(tracer.slot_of(5).page, FmeterTracer::kHotPage);
  EXPECT_EQ(tracer.slot_of(10).page, FmeterTracer::kHotPage);
  EXPECT_EQ(tracer.slot_of(10).slot, 1u);
  EXPECT_NE(tracer.slot_of(6).page, FmeterTracer::kHotPage);
}

TEST(HotCache, DuplicatesDeduplicated) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), 2, hot_config({7, 7, 7}));
  EXPECT_EQ(tracer.hot_set_size(), 1u);
}

TEST(HotCache, OutOfRangeThrows) {
  simkern::Kernel kernel(small_config());
  EXPECT_THROW(FmeterTracer(kernel.symbols(), 2, hot_config({900})),
               std::invalid_argument);
}

TEST(HotCache, CountingRemainsExactAcrossHotAndColdFunctions) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), kernel.num_cpus(),
                      hot_config({0, 1, 2, 3, 4, 5, 6, 7}));
  kernel.install_tracer(&tracer);
  auto& cpu = kernel.cpu(0);

  util::Rng rng(3);
  std::vector<std::uint64_t> expected(900, 0);
  for (int i = 0; i < 50000; ++i) {
    // Zipf-ish bias toward the hot set, plus a cold tail.
    const auto fn = static_cast<simkern::FunctionId>(
        rng.bernoulli(0.8) ? rng.below(8) : rng.below(900));
    kernel.invoke(cpu, fn);
    ++expected[fn];
  }
  const auto snap = tracer.snapshot();
  for (std::size_t fn = 0; fn < 900; ++fn) {
    EXPECT_EQ(snap.counts[fn], expected[fn]) << "fn " << fn;
  }
}

TEST(HotCache, PerCpuIsolationHolds) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), kernel.num_cpus(), hot_config({42}));
  kernel.install_tracer(&tracer);
  kernel.invoke(kernel.cpu(0), 42);
  kernel.invoke(kernel.cpu(1), 42);
  kernel.invoke(kernel.cpu(1), 42);
  EXPECT_EQ(tracer.count_on_cpu(0, 42), 1u);
  EXPECT_EQ(tracer.count_on_cpu(1, 42), 2u);
}

TEST(HotCache, ResetClearsHotCounters) {
  simkern::Kernel kernel(small_config());
  FmeterTracer tracer(kernel.symbols(), kernel.num_cpus(), hot_config({1}));
  kernel.install_tracer(&tracer);
  kernel.invoke(kernel.cpu(0), 1);
  tracer.reset();
  EXPECT_EQ(tracer.count(1), 0u);
}

TEST(HotCache, SnapshotEquivalentWithAndWithoutCache) {
  // The optimization must be invisible in the data: identical call streams
  // produce identical snapshots with the cache on or off.
  simkern::Kernel kernel_a(small_config());
  simkern::Kernel kernel_b(small_config());
  FmeterTracer plain(kernel_a.symbols(), 1);
  FmeterTracer cached(kernel_b.symbols(), 1,
                      hot_config({0, 10, 20, 30, 40, 50}));
  kernel_a.install_tracer(&plain);
  kernel_b.install_tracer(&cached);
  util::Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    const auto fn = static_cast<simkern::FunctionId>(rng.below(900));
    kernel_a.invoke(kernel_a.cpu(0), fn);
    kernel_b.invoke(kernel_b.cpu(0), fn);
  }
  EXPECT_EQ(plain.snapshot().counts, cached.snapshot().counts);
}

}  // namespace
}  // namespace fmeter::trace
