// Compute-path robustness matrix: deadlines, cooperative cancellation,
// admission control and per-shard failure isolation across the execution
// stack (ISSUE 9). The contract under test, end to end:
//
//  * every failure mode yields a structured QueryOutcome, never a poisoned
//    batch — queries that completed keep bit-identical hits;
//  * cancellation is exercised at *every* checkpoint granularity via the
//    deterministic CancelToken::cancel_after_polls trip wire (checkpoint
//    placement is deterministic for a fixed corpus/query/k/mode, so the
//    sweep needs no timing);
//  * a throwing shard degrades exactly its query to a flagged partial
//    (remaining shards' hits survive) — injected through
//    RunOptions::inject_cell_fault, the query-path sibling of
//    io::FaultInjectingEnv;
//  * admission control rejects before any shard is touched;
//  * the engine and database remain fully usable after every one of the
//    above (each test re-runs the golden batch afterwards).
//
// This test also runs under TSan in CI: concurrent run_batch callers where
// one caller cancels mid-batch must leave the others bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/query_engine.hpp"
#include "fmeter/database.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

SignatureDatabase build_db(std::size_t shards, std::size_t docs,
                           std::uint32_t dimension, std::size_t nnz,
                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> signatures;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < docs; ++i) {
    signatures.push_back(random_sparse(rng, dimension, 1 + rng.below(nnz)));
    labels.push_back("label-" + std::to_string(i % 7));
  }
  SignatureDatabase db(shards);
  db.add_batch(std::move(signatures), std::move(labels));
  return db;
}

std::vector<vsm::SparseVector> make_queries(std::size_t n,
                                            std::uint32_t dimension,
                                            std::size_t nnz,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> queries;
  for (std::size_t i = 0; i < n; ++i) {
    queries.push_back(random_sparse(rng, dimension, 1 + rng.below(nnz)));
  }
  return queries;
}

bool hits_identical(const std::vector<SearchHit>& actual,
                    const std::vector<SearchHit>& expected) {
  if (actual.size() != expected.size()) return false;
  for (std::size_t rank = 0; rank < actual.size(); ++rank) {
    if (actual[rank].id != expected[rank].id ||
        actual[rank].label != expected[rank].label ||
        actual[rank].score != expected[rank].score) {
      return false;
    }
  }
  return true;
}

void expect_hits_identical(const std::vector<SearchHit>& actual,
                           const std::vector<SearchHit>& expected,
                           const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t rank = 0; rank < actual.size(); ++rank) {
    EXPECT_EQ(actual[rank].id, expected[rank].id) << context << " rank "
                                                  << rank;
    EXPECT_EQ(actual[rank].label, expected[rank].label)
        << context << " rank " << rank;
    EXPECT_EQ(actual[rank].score, expected[rank].score)
        << context << " rank " << rank;
  }
}

/// The golden-after check every failure-mode test ends with: the database
/// (and the engine + arenas inside it) must serve the exact pre-failure
/// results once the failure condition is gone.
void expect_reusable(const SignatureDatabase& db,
                     const std::vector<vsm::SparseVector>& queries,
                     std::size_t k,
                     const std::vector<std::vector<SearchHit>>& golden,
                     const std::string& context) {
  std::vector<QueryOutcome> outcomes;
  SearchOptions options;
  options.outcomes = &outcomes;
  const auto after = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                     ScanPolicy::kIndexed,
                                     PruningMode::kExact, nullptr, options);
  ASSERT_EQ(after.size(), golden.size()) << context;
  for (std::size_t q = 0; q < golden.size(); ++q) {
    EXPECT_EQ(outcomes[q], QueryOutcome::kOk) << context << " query " << q;
    expect_hits_identical(after[q], golden[q],
                          context + " reuse query " + std::to_string(q));
  }
}

TEST(QueryRobustness, PreCancelledTokenStopsEveryQueryImmediately) {
  const auto db = build_db(3, 240, 64, 12, 0xc0ffee);
  const auto queries = make_queries(10, 64, 12, 0x1234);
  const std::size_t k = 8;
  const auto golden = db.search_batch(queries, k);

  CancelToken token;
  token.cancel();
  std::vector<QueryOutcome> outcomes;
  QueryStats stats;
  SearchOptions options;
  options.deadline = Deadline::of_token(token);
  options.outcomes = &outcomes;
  const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                    ScanPolicy::kIndexed, PruningMode::kExact,
                                    &stats, options);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(outcomes[q], QueryOutcome::kCancelled) << "query " << q;
    EXPECT_TRUE(hits[q].empty()) << "query " << q;
  }
  EXPECT_EQ(stats.cancelled, queries.size());
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_GE(stats.checkpoint_polls, 1u);

  expect_reusable(db, queries, k, golden, "after pre-cancel");
}

TEST(QueryRobustness, ExpiredDeadlineDegradesEveryQuery) {
  const auto db = build_db(4, 300, 64, 12, 0xdead11);
  const auto queries = make_queries(8, 64, 12, 0x5eed);
  const std::size_t k = 10;
  const auto golden = db.search_batch(queries, k);

  std::vector<QueryOutcome> outcomes;
  QueryStats stats;
  SearchOptions options;
  // Already-expired budget: the very first checkpoint of every cell trips.
  options.deadline = Deadline::after(Deadline::Clock::duration::zero());
  options.outcomes = &outcomes;
  const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                    ScanPolicy::kIndexed, PruningMode::kExact,
                                    &stats, options);
  ASSERT_EQ(outcomes.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(outcomes[q], QueryOutcome::kDeadlineExceeded) << "query " << q;
    EXPECT_TRUE(hits[q].empty()) << "query " << q;
  }
  EXPECT_EQ(stats.deadline_exceeded, queries.size());
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.partial_results, 0u);

  expect_reusable(db, queries, k, golden, "after expired deadline");
}

// The matrix core: abort the batch at checkpoint poll p for every p in
// [1, P] where P is the batch's deterministic total poll count. Every
// granularity must yield structured outcomes, keep completed queries
// bit-identical, and leave the database reusable.
TEST(QueryRobustness, CancelAtEveryCheckpointGranularity) {
  const auto db = build_db(3, 260, 64, 12, 0x92a19);
  const auto queries = make_queries(9, 64, 12, 0xfeed);
  const std::size_t k = 7;
  const auto golden = db.search_batch(queries, k);

  // Count the polls of an undisturbed instrumented run: a token that never
  // trips keeps the deadline active (so every checkpoint polls) without
  // changing any result.
  CancelToken idle;
  QueryStats probe_stats;
  std::vector<QueryOutcome> probe_outcomes;
  SearchOptions probe;
  probe.deadline = Deadline::of_token(idle);
  probe.outcomes = &probe_outcomes;
  const auto probed = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                      ScanPolicy::kIndexed,
                                      PruningMode::kExact, &probe_stats,
                                      probe);
  const std::size_t total_polls = probe_stats.checkpoint_polls;
  ASSERT_GE(total_polls, queries.size())
      << "every (query, shard) cell polls at least once on its first charge";
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(probe_outcomes[q], QueryOutcome::kOk);
    expect_hits_identical(probed[q], golden[q],
                          "idle token query " + std::to_string(q));
  }

  for (std::size_t p = 1; p <= total_polls + 1; ++p) {
    CancelToken token;
    token.cancel_after_polls(static_cast<std::int64_t>(p));
    std::vector<QueryOutcome> outcomes;
    QueryStats stats;
    SearchOptions options;
    options.deadline = Deadline::of_token(token);
    options.outcomes = &outcomes;
    const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                      ScanPolicy::kIndexed,
                                      PruningMode::kExact, &stats, options);
    ASSERT_EQ(outcomes.size(), queries.size()) << "trip at poll " << p;

    std::size_t cancelled = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::string context =
          "trip at poll " + std::to_string(p) + " query " + std::to_string(q);
      if (outcomes[q] == QueryOutcome::kOk) {
        expect_hits_identical(hits[q], golden[q], context);
      } else {
        EXPECT_EQ(outcomes[q], QueryOutcome::kCancelled) << context;
        ++cancelled;
      }
    }
    EXPECT_EQ(stats.cancelled, cancelled) << "trip at poll " << p;
    if (p <= total_polls) {
      // The p-th poll both trips the token and observes it: at least the
      // polling cell's query is cancelled.
      EXPECT_GE(cancelled, 1u) << "trip at poll " << p;
    } else {
      // One poll past the end: the wire never trips and the batch is whole.
      EXPECT_EQ(cancelled, 0u);
      EXPECT_EQ(stats.checkpoint_polls, total_polls)
          << "checkpoint placement must be deterministic";
    }
  }

  expect_reusable(db, queries, k, golden, "after granularity sweep");
}

TEST(QueryRobustness, ThrowingShardDegradesOnlyItsQuery) {
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kDocs = 90;
  const auto db = build_db(kShards, kDocs, 48, 10, 0xbadca11);
  const auto queries = make_queries(6, 48, 10, 0xabcd);
  // k == corpus size: every hit list is the full ranking, so the victim's
  // expected result is the golden ranking minus the failed shard's docs.
  const std::size_t k = kDocs;
  const auto golden = db.search_batch(queries, k);

  constexpr std::size_t kVictim = 2;
  constexpr std::size_t kBadShard = 1;
  std::vector<QueryOutcome> outcomes;
  QueryStats stats;
  SearchOptions options;
  options.outcomes = &outcomes;
  options.inject_cell_fault = [](std::size_t query, std::size_t shard) {
    if (query == kVictim && shard == kBadShard) {
      throw std::runtime_error("injected shard fault");
    }
  };
  const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                    ScanPolicy::kIndexed, PruningMode::kExact,
                                    &stats, options);

  ASSERT_EQ(outcomes.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (q == kVictim) continue;
    EXPECT_EQ(outcomes[q], QueryOutcome::kOk) << "query " << q;
    expect_hits_identical(hits[q], golden[q],
                          "bystander query " + std::to_string(q));
  }
  EXPECT_EQ(outcomes[kVictim], QueryOutcome::kShardFailed);
  EXPECT_EQ(stats.shard_failed, 1u);
  EXPECT_EQ(stats.partial_results, 1u);

  // The victim keeps exactly the surviving shards' contribution: the golden
  // full ranking with the failed shard's documents (round-robin: global id
  // g lives in shard g % N) removed, order untouched.
  std::vector<SearchHit> expected;
  for (const auto& hit : golden[kVictim]) {
    if (hit.id % kShards != kBadShard) expected.push_back(hit);
  }
  expect_hits_identical(hits[kVictim], expected, "victim partial result");

  expect_reusable(db, queries, k, golden, "after shard fault");
}

TEST(QueryRobustness, ShardFailureRethrowsWithoutOutcomeSink) {
  const auto db = build_db(2, 60, 48, 10, 0x7777);
  const auto queries = make_queries(4, 48, 10, 0x8888);
  const std::size_t k = 5;
  const auto golden = db.search_batch(queries, k);

  SearchOptions options;  // no outcome sink => pre-taxonomy contract
  options.inject_cell_fault = [](std::size_t query, std::size_t) {
    if (query == 1) throw std::runtime_error("injected shard fault");
  };
  EXPECT_THROW(db.search_batch(queries, k, SimilarityMetric::kCosine,
                               ScanPolicy::kIndexed, PruningMode::kExact,
                               nullptr, options),
               std::runtime_error);

  expect_reusable(db, queries, k, golden, "after rethrow");
}

TEST(QueryRobustness, InflightBudgetRejectsWholeOversizedBatch) {
  auto db = build_db(2, 120, 48, 10, 0xad1111);
  const auto queries = make_queries(5, 48, 10, 0x2222);
  const std::size_t k = 6;
  const auto golden = db.search_batch(queries, k);

  db.set_admission({.max_inflight_queries = 2, .max_query_cost_docs = 0.0});

  // A batch wider than the budget can never be admitted: reject whole.
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    std::vector<QueryOutcome> outcomes;
    QueryStats stats;
    SearchOptions options;
    options.outcomes = &outcomes;
    const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                      policy, PruningMode::kExact, &stats,
                                      options);
    ASSERT_EQ(outcomes.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(outcomes[q], QueryOutcome::kRejected) << "query " << q;
      EXPECT_TRUE(hits[q].empty()) << "query " << q;
    }
    EXPECT_EQ(stats.rejected, queries.size());
    EXPECT_EQ(db.inflight_queries(), 0u) << "rejection must not leak budget";
  }

  // A batch within the budget runs normally and releases its slots.
  const std::vector<vsm::SparseVector> small(queries.begin(),
                                             queries.begin() + 2);
  std::vector<QueryOutcome> outcomes;
  SearchOptions options;
  options.outcomes = &outcomes;
  const auto admitted = db.search_batch(small, k, SimilarityMetric::kCosine,
                                        ScanPolicy::kIndexed,
                                        PruningMode::kExact, nullptr, options);
  for (std::size_t q = 0; q < small.size(); ++q) {
    EXPECT_EQ(outcomes[q], QueryOutcome::kOk);
    expect_hits_identical(admitted[q], golden[q],
                          "admitted query " + std::to_string(q));
  }
  EXPECT_EQ(db.inflight_queries(), 0u);

  db.set_admission({});
  expect_reusable(db, queries, k, golden, "after admission off");
}

TEST(QueryRobustness, CostCapRejectsExpensiveQueriesIndividually) {
  auto db = build_db(3, 200, 64, 12, 0xc057);
  const std::size_t k = 8;

  // A one-term needle and a dense haystack query: the cost model separates
  // them by the posting mass their terms touch.
  util::Rng rng(0x3333);
  const auto cheap = random_sparse(rng, 64, 1);
  const auto dense = random_sparse(rng, 64, 40);
  const double cheap_cost = exec::QueryEngine::estimated_query_cost(
      db.index(), cheap, k, PruningMode::kExact);
  const double dense_cost = exec::QueryEngine::estimated_query_cost(
      db.index(), dense, k, PruningMode::kExact);
  ASSERT_LT(cheap_cost, dense_cost);

  const std::vector<vsm::SparseVector> queries = {cheap, dense};
  const auto golden = db.search_batch(queries, k);

  db.set_admission({.max_inflight_queries = 0,
                    .max_query_cost_docs = (cheap_cost + dense_cost) / 2.0});
  std::vector<QueryOutcome> outcomes;
  QueryStats stats;
  SearchOptions options;
  options.outcomes = &outcomes;
  const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                    ScanPolicy::kIndexed, PruningMode::kExact,
                                    &stats, options);
  EXPECT_EQ(outcomes[0], QueryOutcome::kOk);
  expect_hits_identical(hits[0], golden[0], "cheap query rides along");
  EXPECT_EQ(outcomes[1], QueryOutcome::kRejected);
  EXPECT_TRUE(hits[1].empty());
  EXPECT_EQ(stats.rejected, 1u);

  db.set_admission({});
  expect_reusable(db, queries, k, golden, "after cost cap off");
}

// TSan target: concurrent run_batch callers over one shared database, one
// caller repeatedly cancelling mid-batch. The undisturbed callers must stay
// bit-identical to the solo reference throughout, and the database must
// serve the exact golden batch after all threads join.
TEST(QueryRobustness, ConcurrentCancellationLeavesOtherCallersBitIdentical) {
  const auto db = build_db(4, 400, 64, 12, 0x715a11);
  const auto queries = make_queries(12, 64, 12, 0x4444);
  const std::size_t k = 9;
  const auto golden = db.search_batch(queries, k);

  constexpr int kCleanThreads = 3;
  constexpr int kIters = 6;
  std::atomic<bool> mismatch{false};
  std::atomic<bool> bad_outcome{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kCleanThreads; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < kIters; ++iter) {
        const auto hits = db.search_batch(queries, k);
        if (hits.size() != golden.size()) {
          mismatch.store(true);
          return;
        }
        for (std::size_t q = 0; q < golden.size(); ++q) {
          if (!hits_identical(hits[q], golden[q])) mismatch.store(true);
        }
      }
    });
  }
  // The cancelling caller: a fresh token per iteration, tripped at a
  // different checkpoint each time.
  threads.emplace_back([&] {
    for (int iter = 0; iter < kIters * 2; ++iter) {
      CancelToken token;
      token.cancel_after_polls(1 + iter * 3);
      std::vector<QueryOutcome> outcomes;
      SearchOptions options;
      options.deadline = Deadline::of_token(token);
      options.outcomes = &outcomes;
      const auto hits = db.search_batch(queries, k, SimilarityMetric::kCosine,
                                        ScanPolicy::kIndexed,
                                        PruningMode::kExact, nullptr, options);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        if (outcomes[q] == QueryOutcome::kOk) {
          if (!hits_identical(hits[q], golden[q])) mismatch.store(true);
        } else if (outcomes[q] != QueryOutcome::kCancelled) {
          bad_outcome.store(true);
        }
      }
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_FALSE(mismatch.load())
      << "a concurrent caller diverged from the solo reference";
  EXPECT_FALSE(bad_outcome.load())
      << "a cancelled batch reported an outcome outside {ok, cancelled}";
  expect_reusable(db, queries, k, golden, "after concurrent cancellation");
}

// Scalar search() carries the same options contract as the batch paths.
TEST(QueryRobustness, ScalarSearchReportsOutcomes) {
  auto db = build_db(2, 150, 48, 10, 0x5ca1a);
  util::Rng rng(0x6666);
  const auto query = random_sparse(rng, 48, 10);
  const std::size_t k = 5;
  const auto golden = db.search(query, k);

  CancelToken token;
  token.cancel();
  std::vector<QueryOutcome> outcomes;
  SearchOptions options;
  options.deadline = Deadline::of_token(token);
  options.outcomes = &outcomes;
  const auto cancelled = db.search(query, k, SimilarityMetric::kCosine,
                                   ScanPolicy::kIndexed, PruningMode::kExact,
                                   nullptr, options);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes.front(), QueryOutcome::kCancelled);
  EXPECT_TRUE(cancelled.empty());

  db.set_admission({.max_inflight_queries = 0, .max_query_cost_docs = 1e-9});
  std::vector<QueryOutcome> reject_outcomes;
  SearchOptions reject;
  reject.outcomes = &reject_outcomes;
  const auto rejected = db.search(query, k, SimilarityMetric::kCosine,
                                  ScanPolicy::kIndexed, PruningMode::kExact,
                                  nullptr, reject);
  ASSERT_EQ(reject_outcomes.size(), 1u);
  EXPECT_EQ(reject_outcomes.front(), QueryOutcome::kRejected);
  EXPECT_TRUE(rejected.empty());

  db.set_admission({});
  const auto after = db.search(query, k);
  expect_hits_identical(after, golden, "scalar reuse");
}

}  // namespace
}  // namespace fmeter::core
