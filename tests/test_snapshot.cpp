#include "trace/snapshot.hpp"

#include <gtest/gtest.h>

namespace fmeter::trace {
namespace {

CounterSnapshot snap(std::vector<std::uint64_t> counts) {
  CounterSnapshot s;
  s.counts = std::move(counts);
  return s;
}

TEST(CounterSnapshot, TotalAndNonzero) {
  const auto s = snap({0, 5, 0, 7});
  EXPECT_EQ(s.total(), 12u);
  EXPECT_EQ(s.nonzero(), 2u);
  EXPECT_EQ(s.size(), 4u);
}

TEST(CounterSnapshot, DiffComputesInterval) {
  const auto before = snap({1, 10, 3});
  const auto after = snap({4, 10, 9});
  const auto delta = after.diff(before);
  EXPECT_EQ(delta.counts, (std::vector<std::uint64_t>{3, 0, 6}));
}

TEST(CounterSnapshot, DiffSaturatesOnCounterReset) {
  const auto before = snap({5});
  const auto after = snap({2});  // tracer was reset mid-interval
  EXPECT_EQ(after.diff(before).counts[0], 0u);
}

TEST(CounterSnapshot, DiffSizeMismatchThrows) {
  EXPECT_THROW(snap({1}).diff(snap({1, 2})), std::invalid_argument);
}

TEST(CounterSnapshot, ToDocumentSkipsZeros) {
  const auto doc = snap({0, 3, 0, 4}).to_document("label", 10.0);
  ASSERT_EQ(doc.counts.size(), 2u);
  EXPECT_EQ(doc.counts[0], (std::pair<std::uint32_t, std::uint64_t>{1, 3}));
  EXPECT_EQ(doc.counts[1], (std::pair<std::uint32_t, std::uint64_t>{3, 4}));
  EXPECT_EQ(doc.label, "label");
  EXPECT_DOUBLE_EQ(doc.duration_s, 10.0);
}

TEST(CounterSnapshot, SerializeDeserializeRoundTrip) {
  const auto original = snap({0, 42, 0, 0, 7, 199});
  const auto parsed = CounterSnapshot::deserialize(original.serialize());
  EXPECT_EQ(parsed.counts, original.counts);
}

TEST(CounterSnapshot, SerializeIsSparse) {
  const auto s = snap({0, 0, 0, 5});
  const std::string text = s.serialize();
  // Header + a single "3 5" line.
  EXPECT_EQ(text, "4\n3 5\n");
}

TEST(CounterSnapshot, DeserializeEmptySnapshot) {
  const auto parsed = CounterSnapshot::deserialize("3\n");
  EXPECT_EQ(parsed.counts, (std::vector<std::uint64_t>{0, 0, 0}));
}

TEST(CounterSnapshot, DeserializeMalformedThrows) {
  EXPECT_THROW(CounterSnapshot::deserialize("abc"), std::invalid_argument);
  EXPECT_THROW(CounterSnapshot::deserialize("2\n5 1\n"), std::invalid_argument);
  EXPECT_THROW(CounterSnapshot::deserialize("2\n0 x\n"), std::invalid_argument);
}

TEST(CounterSnapshot, RoundTripLargeValues) {
  const auto original = snap({0, 0xffffffffffffffffULL});
  const auto parsed = CounterSnapshot::deserialize(original.serialize());
  EXPECT_EQ(parsed.counts[1], 0xffffffffffffffffULL);
}

}  // namespace
}  // namespace fmeter::trace
