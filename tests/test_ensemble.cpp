#include "ml/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

vsm::SparseVector vec2(double x, double y) {
  return vsm::SparseVector::from_entries({{0, x}, {1, y}});
}

Dataset noisy_classes(std::size_t per_class, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    const int pos = rng.bernoulli(noise) ? -1 : +1;
    const int neg = rng.bernoulli(noise) ? +1 : -1;
    data.push_back(
        {vec2(1.0 + rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)), pos});
    data.push_back(
        {vec2(-1.0 + rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)), neg});
  }
  return data;
}

template <typename Model>
double accuracy(const Model& model, const Dataset& data) {
  std::size_t correct = 0;
  for (const auto& example : data) {
    correct += model.predict(example.x) == example.label;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(Bagging, LearnsCleanData) {
  const Dataset data = noisy_classes(40, 0.0, 1);
  const BaggedTrees forest = train_bagged_trees(data);
  EXPECT_EQ(forest.size(), 15u);
  EXPECT_GE(accuracy(forest, data), 0.97);
}

TEST(Bagging, GeneralizesBetterThanSingleTreeOnNoise) {
  // Train on noisy data, evaluate on a clean holdout drawn from the same
  // distribution: bagging's variance reduction should not lose to a single
  // deep tree (and usually wins).
  const Dataset train = noisy_classes(60, 0.12, 2);
  const Dataset clean = noisy_classes(60, 0.0, 3);
  DecisionTreeConfig deep;
  deep.max_depth = 16;
  deep.min_samples_leaf = 1;
  const DecisionTree single = train_decision_tree(train, deep);
  BaggingConfig config;
  config.tree = deep;
  config.num_trees = 21;
  const BaggedTrees forest = train_bagged_trees(train, config);
  EXPECT_GE(accuracy(forest, clean) + 0.02, accuracy(single, clean));
}

TEST(Bagging, DecisionValueBounded) {
  const Dataset data = noisy_classes(20, 0.0, 4);
  const BaggedTrees forest = train_bagged_trees(data);
  for (const auto& example : data) {
    const double value = forest.decision_value(example.x);
    EXPECT_GE(value, -1.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Bagging, InvalidConfigThrows) {
  const Dataset data = noisy_classes(5, 0.0, 5);
  BaggingConfig config;
  config.num_trees = 0;
  EXPECT_THROW(train_bagged_trees(data, config), std::invalid_argument);
  EXPECT_THROW(train_bagged_trees({}, {}), std::invalid_argument);
}

TEST(AdaBoost, BoostsStumpsTowardDiagonalBoundary) {
  // A diagonal boundary (x + y > 0): a single axis-aligned stump caps out
  // well below 90%, while a boosted committee of stumps approximates the
  // diagonal as a staircase — the classic AdaBoost demonstration.
  util::Rng rng(6);
  Dataset data;
  for (int i = 0; i < 240; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    const double y = rng.uniform(-1.0, 1.0);
    if (std::abs(x + y) < 0.1) continue;  // margin for determinism
    data.push_back({vec2(x, y), x + y > 0.0 ? +1 : -1});
  }
  DecisionTreeConfig stump;
  stump.max_depth = 1;
  stump.min_samples_leaf = 1;
  const DecisionTree single = train_decision_tree(data, stump);

  AdaBoostConfig config;
  config.num_rounds = 60;
  config.weak = stump;
  const AdaBoost boosted = train_adaboost(data, config);

  EXPECT_LE(accuracy(single, data), 0.9);
  EXPECT_GE(accuracy(boosted, data), 0.95);
  EXPECT_GT(boosted.rounds(), 5u);
  EXPECT_GT(accuracy(boosted, data), accuracy(single, data) + 0.05);
}

TEST(AdaBoost, PerfectWeakLearnerShortCircuits) {
  const Dataset data = noisy_classes(30, 0.0, 7);
  AdaBoostConfig config;
  config.num_rounds = 50;
  config.weak.max_depth = 6;  // strong enough to be perfect on round one
  const AdaBoost boosted = train_adaboost(data, config);
  EXPECT_EQ(boosted.rounds(), 1u);
  EXPECT_DOUBLE_EQ(accuracy(boosted, data), 1.0);
}

TEST(AdaBoost, InvalidConfigThrows) {
  AdaBoostConfig config;
  config.num_rounds = 0;
  const Dataset data = noisy_classes(5, 0.0, 8);
  EXPECT_THROW(train_adaboost(data, config), std::invalid_argument);
  EXPECT_THROW(train_adaboost({}, {}), std::invalid_argument);
}

TEST(AdaBoost, HandlesLabelNoiseGracefully) {
  const Dataset train = noisy_classes(60, 0.1, 9);
  const Dataset clean = noisy_classes(60, 0.0, 10);
  const AdaBoost boosted = train_adaboost(train);
  EXPECT_GE(accuracy(boosted, clean), 0.9);
}

}  // namespace
}  // namespace fmeter::ml
