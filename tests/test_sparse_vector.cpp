#include "vsm/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fmeter::vsm {
namespace {

SparseVector make(std::vector<SparseVector::Entry> entries) {
  return SparseVector::from_entries(std::move(entries));
}

TEST(SparseVector, FromEntriesSortsAndDeduplicates) {
  const auto v = make({{5, 1.0}, {2, 2.0}, {5, 3.0}});
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.at(2), 2.0);
  EXPECT_DOUBLE_EQ(v.at(5), 4.0);
}

TEST(SparseVector, FromEntriesDropsZeros) {
  const auto v = make({{1, 0.0}, {2, 5.0}, {3, 2.0}, {3, -2.0}});
  EXPECT_EQ(v.nnz(), 1u);
  EXPECT_DOUBLE_EQ(v.at(2), 5.0);
}

TEST(SparseVector, AtAbsentIndexIsZero) {
  const auto v = make({{10, 1.0}});
  EXPECT_EQ(v.at(9), 0.0);
  EXPECT_EQ(v.at(11), 0.0);
}

TEST(SparseVector, FromDenseRoundTrip) {
  const std::vector<double> dense = {0.0, 1.5, 0.0, -2.0, 0.0};
  const auto v = SparseVector::from_dense(dense);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.to_dense(5), dense);
}

TEST(SparseVector, DimensionBound) {
  EXPECT_EQ(SparseVector().dimension_bound(), 0u);
  EXPECT_EQ(make({{7, 1.0}}).dimension_bound(), 8u);
}

TEST(SparseVector, ToDenseTooSmallThrows) {
  const auto v = make({{7, 1.0}});
  EXPECT_THROW(v.to_dense(7), std::invalid_argument);
}

TEST(SparseVector, DotProductMergeJoin) {
  const auto a = make({{0, 1.0}, {2, 2.0}, {5, 3.0}});
  const auto b = make({{2, 4.0}, {5, -1.0}, {9, 10.0}});
  EXPECT_DOUBLE_EQ(a.dot(b), 2.0 * 4.0 + 3.0 * -1.0);
  EXPECT_DOUBLE_EQ(a.dot(b), b.dot(a));
}

TEST(SparseVector, DotWithEmptyIsZero) {
  const auto a = make({{1, 2.0}});
  EXPECT_EQ(a.dot(SparseVector()), 0.0);
}

TEST(SparseVector, Norms) {
  const auto v = make({{0, 3.0}, {1, -4.0}});
  EXPECT_DOUBLE_EQ(v.norm_l1(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm_l2(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_lp(2.0), 5.0);
  EXPECT_NEAR(v.norm_lp(1.0), 7.0, 1e-12);
}

TEST(SparseVector, NormLpBelowOneThrows) {
  const auto v = make({{0, 1.0}});
  EXPECT_THROW(v.norm_lp(0.5), std::invalid_argument);
}

TEST(SparseVector, ScaledAndNormalized) {
  const auto v = make({{0, 3.0}, {1, 4.0}});
  const auto s = v.scaled(2.0);
  EXPECT_DOUBLE_EQ(s.at(0), 6.0);
  const auto n = v.l2_normalized();
  EXPECT_NEAR(n.norm_l2(), 1.0, 1e-12);
  EXPECT_NEAR(n.at(0), 0.6, 1e-12);
}

TEST(SparseVector, NormalizeZeroVectorIsNoop) {
  const SparseVector zero;
  EXPECT_EQ(zero.l2_normalized(), zero);
}

TEST(SparseVector, ScaleByZeroGivesEmpty) {
  const auto v = make({{3, 2.0}});
  EXPECT_TRUE(v.scaled(0.0).empty());
}

TEST(SparseVector, PlusMinus) {
  const auto a = make({{0, 1.0}, {2, 2.0}});
  const auto b = make({{2, 3.0}, {4, 4.0}});
  const auto sum = a.plus(b);
  EXPECT_DOUBLE_EQ(sum.at(0), 1.0);
  EXPECT_DOUBLE_EQ(sum.at(2), 5.0);
  EXPECT_DOUBLE_EQ(sum.at(4), 4.0);
  const auto diff = a.minus(a);
  EXPECT_TRUE(diff.empty());
}

TEST(SparseVector, AddToAccumulatesWeighted) {
  const auto v = make({{1, 2.0}, {3, 1.0}});
  std::vector<double> dense(4, 1.0);
  v.add_to(dense, 0.5);
  EXPECT_DOUBLE_EQ(dense[1], 2.0);
  EXPECT_DOUBLE_EQ(dense[3], 1.5);
  EXPECT_DOUBLE_EQ(dense[0], 1.0);
}

TEST(SparseVector, EuclideanDistanceKnown) {
  const auto a = make({{0, 1.0}});
  const auto b = make({{1, 1.0}});
  EXPECT_NEAR(euclidean_distance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_EQ(euclidean_distance(a, a), 0.0);
}

TEST(SparseVector, MinkowskiMatchesEuclideanAtP2) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SparseVector::Entry> ea;
    std::vector<SparseVector::Entry> eb;
    for (int i = 0; i < 30; ++i) {
      if (rng.bernoulli(0.5)) ea.emplace_back(i, rng.uniform(-2.0, 2.0));
      if (rng.bernoulli(0.5)) eb.emplace_back(i, rng.uniform(-2.0, 2.0));
    }
    const auto a = make(std::move(ea));
    const auto b = make(std::move(eb));
    EXPECT_NEAR(minkowski_distance(a, b, 2.0), euclidean_distance(a, b), 1e-9);
  }
}

TEST(SparseVector, MinkowskiP1IsManhattan) {
  const auto a = make({{0, 1.0}, {1, 2.0}});
  const auto b = make({{0, 4.0}, {2, 1.0}});
  EXPECT_NEAR(minkowski_distance(a, b, 1.0), 3.0 + 2.0 + 1.0, 1e-12);
}

TEST(SparseVector, CosineIdenticalDirection) {
  const auto a = make({{0, 1.0}, {1, 2.0}});
  EXPECT_NEAR(cosine_similarity(a, a.scaled(5.0)), 1.0, 1e-12);
}

TEST(SparseVector, CosineOrthogonal) {
  const auto a = make({{0, 1.0}});
  const auto b = make({{1, 1.0}});
  EXPECT_EQ(cosine_similarity(a, b), 0.0);
}

TEST(SparseVector, CosineOpposite) {
  const auto a = make({{0, 1.0}});
  EXPECT_NEAR(cosine_similarity(a, a.scaled(-1.0)), -1.0, 1e-12);
}

TEST(SparseVector, CosineWithZeroVectorIsZero) {
  const auto a = make({{0, 1.0}});
  EXPECT_EQ(cosine_similarity(a, SparseVector()), 0.0);
}

// --- property-style sweeps ---------------------------------------------------

class SparseVectorProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SparseVector random_vector(util::Rng& rng, int dim = 50) {
    std::vector<SparseVector::Entry> entries;
    for (int i = 0; i < dim; ++i) {
      if (rng.bernoulli(0.4)) {
        entries.emplace_back(static_cast<SparseVector::Index>(i),
                             rng.uniform(-3.0, 3.0));
      }
    }
    return SparseVector::from_entries(std::move(entries));
  }
};

TEST_P(SparseVectorProperties, CosineScaleInvariance) {
  util::Rng rng(GetParam());
  const auto a = random_vector(rng);
  const auto b = random_vector(rng);
  const double alpha = rng.uniform(0.1, 10.0);
  const double beta = rng.uniform(0.1, 10.0);
  EXPECT_NEAR(cosine_similarity(a.scaled(alpha), b.scaled(beta)),
              cosine_similarity(a, b), 1e-9);
}

TEST_P(SparseVectorProperties, TriangleInequality) {
  util::Rng rng(GetParam() ^ 0xabcdULL);
  const auto a = random_vector(rng);
  const auto b = random_vector(rng);
  const auto c = random_vector(rng);
  EXPECT_LE(euclidean_distance(a, c),
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-9);
}

TEST_P(SparseVectorProperties, CauchySchwarz) {
  util::Rng rng(GetParam() ^ 0x1234ULL);
  const auto a = random_vector(rng);
  const auto b = random_vector(rng);
  EXPECT_LE(std::abs(a.dot(b)), a.norm_l2() * b.norm_l2() + 1e-9);
}

TEST_P(SparseVectorProperties, DistanceSymmetry) {
  util::Rng rng(GetParam() ^ 0x9999ULL);
  const auto a = random_vector(rng);
  const auto b = random_vector(rng);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), euclidean_distance(b, a));
}

TEST_P(SparseVectorProperties, DenseSparseDotAgreement) {
  util::Rng rng(GetParam() ^ 0x7777ULL);
  const auto a = random_vector(rng);
  const auto b = random_vector(rng);
  const auto da = a.to_dense(64);
  const auto db = b.to_dense(64);
  double expected = 0.0;
  for (int i = 0; i < 64; ++i) expected += da[i] * db[i];
  EXPECT_NEAR(a.dot(b), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVectorProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SparseVector, FromSortedMatchesFromEntries) {
  const auto trusted = SparseVector::from_sorted({1, 5, 9}, {0.5, -2.0, 1.25});
  const auto general =
      SparseVector::from_entries({{5, -2.0}, {1, 0.5}, {9, 1.25}});
  EXPECT_TRUE(trusted == general);
  EXPECT_TRUE(SparseVector::from_sorted({}, {}) == SparseVector());
}

TEST(SparseVector, FromSortedRejectsInvariantViolations) {
  EXPECT_THROW(SparseVector::from_sorted({1, 2}, {1.0}),
               std::invalid_argument);  // misaligned arrays
  EXPECT_THROW(SparseVector::from_sorted({2, 1}, {1.0, 1.0}),
               std::invalid_argument);  // out of order
  EXPECT_THROW(SparseVector::from_sorted({1, 1}, {1.0, 1.0}),
               std::invalid_argument);  // duplicate index
  EXPECT_THROW(SparseVector::from_sorted({1, 2}, {1.0, 0.0}),
               std::invalid_argument);  // stored zero
}

}  // namespace
}  // namespace fmeter::vsm
