#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace fmeter::util {
namespace {

TEST(Stats, MeanOfKnownSample) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // mean 5, sum squared deviations 32, n-1 = 7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs = {3.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(Stats, StddevIsRootVariance) {
  const std::vector<double> xs = {1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(Stats, SemShrinksWithN) {
  const std::vector<double> small = {1.0, 2.0, 3.0};
  std::vector<double> large;
  for (int r = 0; r < 100; ++r) {
    large.insert(large.end(), small.begin(), small.end());
  }
  EXPECT_GT(sem(small), sem(large));
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
}

TEST(Stats, PercentileEmptyThrows) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_EQ(min(xs), -1.0);
  EXPECT_EQ(max(xs), 7.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {10.0, 20.0, 30.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {30.0, 20.0, 10.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats running;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    running.add(x);
  }
  EXPECT_NEAR(running.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(running.variance(), variance(xs), 1e-9);
  EXPECT_NEAR(running.sem(), sem(xs), 1e-9);
  EXPECT_EQ(running.count(), xs.size());
  EXPECT_EQ(running.min(), min(xs));
  EXPECT_EQ(running.max(), max(xs));
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Rng rng(2);
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Stats, FitLineExact) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};  // y = 1 + 2x
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineRequiresTwoPoints) {
  EXPECT_THROW(fit_line(std::vector<double>{1.0}, std::vector<double>{1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fmeter::util
