#include "simkern/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "simkern/trace_hook.hpp"

namespace fmeter::simkern {
namespace {

/// Records every hook invocation for inspection.
class RecordingHook final : public TraceHook {
 public:
  void on_function_entry(CpuContext& cpu, FunctionId fn,
                         FunctionId parent) noexcept override {
    events.push_back({cpu.id(), fn, parent});
  }
  const char* name() const noexcept override { return "recording"; }

  struct Event {
    CpuId cpu;
    FunctionId fn;
    FunctionId parent;
  };
  std::vector<Event> events;
};

KernelConfig small_config() {
  KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = 4;
  return config;
}

TEST(Kernel, ConstructsWithConfiguredCpus) {
  Kernel kernel(small_config());
  EXPECT_EQ(kernel.num_cpus(), 4u);
  EXPECT_EQ(kernel.symbols().size(), 900u);
}

TEST(Kernel, ZeroCpusThrows) {
  KernelConfig config = small_config();
  config.num_cpus = 0;
  EXPECT_THROW(Kernel{config}, std::invalid_argument);
}

TEST(Kernel, InvokeDispatchesToInstalledTracer) {
  Kernel kernel(small_config());
  RecordingHook hook;
  kernel.install_tracer(&hook);
  const FunctionId fn = kernel.id_of("vfs_read");
  kernel.invoke(kernel.cpu(1), fn, kernel.id_of("sys_read"));
  ASSERT_EQ(hook.events.size(), 1u);
  EXPECT_EQ(hook.events[0].cpu, 1u);
  EXPECT_EQ(hook.events[0].fn, fn);
  EXPECT_EQ(hook.events[0].parent, kernel.id_of("sys_read"));
}

TEST(Kernel, VanillaInvokesNothing) {
  Kernel kernel(small_config());
  RecordingHook hook;
  kernel.install_tracer(&hook);
  kernel.install_tracer(nullptr);
  kernel.invoke(kernel.cpu(0), 0);
  EXPECT_TRUE(hook.events.empty());
}

TEST(Kernel, InvokeCountsDispatches) {
  Kernel kernel(small_config());
  auto& cpu = kernel.cpu(0);
  const auto before = cpu.calls_dispatched();
  for (int i = 0; i < 10; ++i) kernel.invoke(cpu, 3);
  EXPECT_EQ(cpu.calls_dispatched(), before + 10);
}

TEST(Kernel, InvokeBurnsWork) {
  Kernel kernel(small_config());
  auto& cpu = kernel.cpu(0);
  const auto before = cpu.work_sink();
  kernel.invoke(cpu, 0);
  EXPECT_NE(cpu.work_sink(), before);
}

TEST(Kernel, IdOfUnknownThrows) {
  Kernel kernel(small_config());
  EXPECT_THROW(kernel.id_of("not_a_symbol"), std::out_of_range);
}

TEST(CpuContext, PreemptCountBalance) {
  CpuContext cpu(0, 1);
  EXPECT_EQ(cpu.preempt_count(), 0u);
  cpu.preempt_disable();
  cpu.preempt_disable();
  EXPECT_EQ(cpu.preempt_count(), 2u);
  cpu.preempt_enable();
  cpu.preempt_enable();
  EXPECT_EQ(cpu.preempt_count(), 0u);
}

TEST(CpuContext, IndependentRngStreams) {
  Kernel kernel(small_config());
  auto& a = kernel.cpu(0).rng();
  auto& b = kernel.cpu(1).rng();
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

// --- module behavior ----------------------------------------------------------

ModuleBlueprint test_module(std::uint32_t first_fn_bytes = 100) {
  ModuleBlueprint bp;
  bp.name = "testmod";
  bp.version = "1.0";
  bp.functions.push_back({"mod_fn_a", first_fn_bytes, 2, {"kmalloc", "memcpy"}});
  bp.functions.push_back({"mod_fn_b", 200, 1, {"kfree"}});
  return bp;
}

TEST(Kernel, LoadModuleResolvesRelocations) {
  Kernel kernel(small_config());
  Module& module = kernel.load_module(test_module());
  EXPECT_EQ(module.name(), "testmod");
  EXPECT_EQ(module.function_count(), 2u);
  const auto& fn = module.function(module.function_index("mod_fn_a"));
  ASSERT_EQ(fn.core_calls.size(), 2u);
  EXPECT_EQ(fn.core_calls[0], kernel.id_of("kmalloc"));
  EXPECT_EQ(fn.core_calls[1], kernel.id_of("memcpy"));
}

TEST(Kernel, LoadModuleUnknownRelocationThrows) {
  Kernel kernel(small_config());
  ModuleBlueprint bp = test_module();
  bp.functions[0].core_calls.push_back("missing_symbol");
  EXPECT_THROW(kernel.load_module(bp), std::out_of_range);
}

TEST(Kernel, ModuleLoadsInModuleArea) {
  Kernel kernel(small_config());
  Module& module = kernel.load_module(test_module());
  EXPECT_GE(module.load_address(), kModuleAreaBase);
}

TEST(Kernel, FindAndUnloadModule) {
  Kernel kernel(small_config());
  kernel.load_module(test_module());
  EXPECT_NE(kernel.find_module("testmod"), nullptr);
  EXPECT_EQ(kernel.module_count(), 1u);
  kernel.unload_module("testmod");
  EXPECT_EQ(kernel.find_module("testmod"), nullptr);
  EXPECT_EQ(kernel.module_count(), 0u);
}

TEST(Kernel, UnloadAbsentModuleIsNoop) {
  Kernel kernel(small_config());
  kernel.unload_module("ghost");
  EXPECT_EQ(kernel.module_count(), 0u);
}

// Code changes shift every subsequent offset — the paper's reason for not
// instrumenting modules (§3).
TEST(Module, OffsetsShiftWhenEarlierFunctionChangesSize) {
  Kernel kernel(small_config());
  Module& v1 = kernel.load_module(test_module(100));
  ModuleBlueprint changed = test_module(132);  // "slight modification"
  changed.version = "1.1";
  Module& v2 = kernel.load_module(changed);
  const auto b1 = v1.function(v1.function_index("mod_fn_b")).offset;
  const auto b2 = v2.function(v2.function_index("mod_fn_b")).offset;
  EXPECT_NE(b1, b2);
}

TEST(Module, FunctionIndexThrowsForUnknown) {
  Kernel kernel(small_config());
  Module& module = kernel.load_module(test_module());
  EXPECT_THROW(module.function_index("nope"), std::out_of_range);
}

TEST(Module, FunctionAddressesRelocated) {
  Kernel kernel(small_config());
  Module& module = kernel.load_module(test_module());
  EXPECT_EQ(module.function_address(0), module.load_address());
  EXPECT_GT(module.function_address(1), module.function_address(0));
}

// Module-local functions are invisible to the hook; their core-kernel calls
// are not (the myri10ge experiment's channel, §4.2.1).
TEST(Kernel, ModuleFunctionsInvisibleButCoreCallsTraced) {
  Kernel kernel(small_config());
  Module& module = kernel.load_module(test_module());
  RecordingHook hook;
  kernel.install_tracer(&hook);
  kernel.invoke_module_function(kernel.cpu(0), module,
                                module.function_index("mod_fn_a"));
  ASSERT_EQ(hook.events.size(), 2u);  // kmalloc + memcpy, NOT mod_fn_a
  EXPECT_EQ(hook.events[0].fn, kernel.id_of("kmalloc"));
  EXPECT_EQ(hook.events[1].fn, kernel.id_of("memcpy"));
}

}  // namespace
}  // namespace fmeter::simkern
