// Cross-policy equivalence for the parallel query engine: over randomized
// corpora, the brute-force scan, the single-shard index, every N-shard
// configuration and the batched API must return bit-identical results —
// same ids, same labels, same ordering, same scores. Plus the defined
// degenerate behavior (k == 0 / empty query => no hits, no dispatch) and
// Euclidean classification through the engine.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "exec/task_pool.hpp"
#include "fmeter/database.hpp"
#include "fmeter/retrieval.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 3, 5, 8};

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);  // may be 0 => empty vector
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

/// The same corpus replicated into one database per shard count.
std::vector<SignatureDatabase> replicated_dbs(util::Rng& rng, std::size_t n,
                                              std::uint32_t dimension,
                                              std::size_t max_nnz) {
  std::vector<SignatureDatabase> dbs;
  for (const std::size_t shards : kShardCounts) {
    dbs.emplace_back(shards);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto signature = random_sparse(rng, dimension, max_nnz);
    const auto label = "label-" + std::to_string(i % 5);
    for (auto& db : dbs) db.add(signature, label);
  }
  return dbs;
}

void expect_hits_identical(const std::vector<SearchHit>& actual,
                           const std::vector<SearchHit>& expected,
                           const std::string& context) {
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (std::size_t rank = 0; rank < actual.size(); ++rank) {
    EXPECT_EQ(actual[rank].id, expected[rank].id) << context << " rank " << rank;
    EXPECT_EQ(actual[rank].label, expected[rank].label)
        << context << " rank " << rank;
    EXPECT_EQ(actual[rank].score, expected[rank].score)
        << context << " rank " << rank;
  }
}

TEST(QueryEngine, AllShardCountsAndBatchingMatchBruteForce) {
  util::Rng rng(0x9a7e);
  for (int trial = 0; trial < 8; ++trial) {
    const auto dbs = replicated_dbs(rng, 30 + rng.below(50), 48, 10);

    std::vector<vsm::SparseVector> queries;
    for (int q = 0; q < 12; ++q) queries.push_back(random_sparse(rng, 48, 10));
    const std::size_t k = 1 + rng.below(10);

    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      // One golden reference per metric: the scan on the first replica (the
      // scan never touches the index, so any replica would do).
      const auto golden =
          dbs.front().search_batch(queries, k, metric, ScanPolicy::kBruteForce);
      for (std::size_t d = 0; d < dbs.size(); ++d) {
        const std::string context =
            "trial " + std::to_string(trial) + " shards " +
            std::to_string(dbs[d].num_shards()) +
            (metric == SimilarityMetric::kCosine ? " cosine" : " l2");
        // Batched path.
        const auto batched =
            dbs[d].search_batch(queries, k, metric, ScanPolicy::kIndexed);
        ASSERT_EQ(batched.size(), queries.size()) << context;
        for (std::size_t q = 0; q < queries.size(); ++q) {
          expect_hits_identical(batched[q], golden[q],
                                context + " batched query " + std::to_string(q));
        }
        // Scalar path (batch of one) on a sample of the queries.
        for (std::size_t q = 0; q < queries.size(); q += 4) {
          expect_hits_identical(
              dbs[d].search(queries[q], k, metric, ScanPolicy::kIndexed),
              golden[q], context + " scalar query " + std::to_string(q));
        }
      }
    }
  }
}

TEST(QueryEngine, IncrementalAddsKeepAllShardCountsEquivalent) {
  util::Rng rng(0x1bad);
  std::vector<SignatureDatabase> dbs;
  for (const std::size_t shards : kShardCounts) dbs.emplace_back(shards);
  for (int i = 0; i < 40; ++i) {
    const auto signature = random_sparse(rng, 24, 8);
    for (auto& db : dbs) db.add(signature, "label-" + std::to_string(i % 3));
    const auto query = random_sparse(rng, 24, 8);
    const auto golden =
        dbs.front().search(query, 5, SimilarityMetric::kCosine,
                           ScanPolicy::kBruteForce);
    for (const auto& db : dbs) {
      expect_hits_identical(
          db.search(query, 5, SimilarityMetric::kCosine, ScanPolicy::kIndexed),
          golden, "after add " + std::to_string(i) + " shards " +
                      std::to_string(db.num_shards()));
    }
  }
}

TEST(QueryEngine, KZeroAndEmptyQueriesShortCircuitWithoutDispatch) {
  util::Rng rng(0xd15c);
  exec::ShardedIndex index(4);
  // Large enough that a non-degenerate batch *does* dispatch (see the
  // control at the end) — otherwise the zero-dispatch assertions below
  // would hold vacuously via the small-index inline path.
  for (int i = 0; i < 5000; ++i) index.add(random_sparse(rng, 32, 8));

  exec::TaskPool pool(2);
  const exec::QueryEngine engine(index, &pool);

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 8; ++q) {
    queries.push_back(random_sparse(rng, 32, 8));
    if (queries.back().empty()) {
      queries.back() = vsm::SparseVector::from_entries(
          {{static_cast<vsm::SparseVector::Index>(q), 1.0}});
    }
  }

  // k == 0: per-query empty results, nothing reaches the pool.
  const auto zero_k = engine.run_batch(queries, 0);
  ASSERT_EQ(zero_k.size(), queries.size());
  for (const auto& hits : zero_k) EXPECT_TRUE(hits.empty());
  EXPECT_EQ(pool.span_batches(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);

  // A batch of only empty/all-zero queries: same story.
  const std::vector<vsm::SparseVector> empties(5);
  const auto no_hits = engine.run_batch(empties, 10);
  ASSERT_EQ(no_hits.size(), empties.size());
  for (const auto& hits : no_hits) EXPECT_TRUE(hits.empty());
  EXPECT_EQ(pool.span_batches(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);

  EXPECT_TRUE(engine.run(vsm::SparseVector(), 10).empty());
  EXPECT_EQ(pool.span_batches(), 0u);
  EXPECT_EQ(pool.tasks_executed(), 0u);

  // Control: the same batch with a valid k does dispatch — proving the
  // zero counts above came from the degenerate short-circuits, not from
  // an index too small to ever reach the pool. (span_batches, not
  // tasks_executed: on a loaded one-core host the caller can legitimately
  // drain the whole reservation grid before any worker wakes.)
  exec::QueryStats stats;
  const auto real = engine.run_batch(queries, 5, index::Metric::kCosine,
                                     exec::PruningMode::kExact, &stats);
  ASSERT_EQ(real.size(), queries.size());
  for (const auto& hits : real) EXPECT_EQ(hits.size(), 5u);
  EXPECT_GT(pool.span_batches(), 0u);
  EXPECT_EQ(engine.pooled_batches(), 1u);
  EXPECT_EQ(stats.dispatch_pooled, queries.size());
  EXPECT_EQ(stats.dispatch_inline, 0u);
  EXPECT_GT(stats.spans_reserved, 0u);
  EXPECT_EQ(pool.spans_reserved(), stats.spans_reserved);
}

TEST(QueryEngine, MixedBatchGivesEmptyQueriesNoHitsAndOthersFullHits) {
  util::Rng rng(0x3b1d);
  SignatureDatabase db(3);
  for (int i = 0; i < 20; ++i) {
    db.add(random_sparse(rng, 16, 6), "label-" + std::to_string(i % 2));
  }
  std::vector<vsm::SparseVector> queries;
  queries.push_back(vsm::SparseVector::from_entries({{3, 1.0}}));
  queries.push_back(vsm::SparseVector());  // empty in the middle
  queries.push_back(vsm::SparseVector::from_entries({{5, 0.5}, {9, 0.5}}));
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    const auto results = db.search_batch(queries, 4, SimilarityMetric::kCosine,
                                         policy);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].size(), 4u);
    EXPECT_TRUE(results[1].empty());
    EXPECT_EQ(results[2].size(), 4u);
    expect_hits_identical(results[0], db.search(queries[0], 4), "mixed q0");
    expect_hits_identical(results[2], db.search(queries[2], 4), "mixed q2");
  }
}

TEST(QueryEngine, EuclideanClassifyDisagreesWithCosineWhereItShould) {
  // Centroid "short" and "long" point the same direction, so cosine cannot
  // tell them apart (tie resolves to the first-seen label); Euclidean must
  // pick the nearer magnitude — through both policies, i.e. the engine's
  // Euclidean scoring really is exercised end to end.
  SignatureDatabase db(2);
  db.add(vsm::SparseVector::from_entries({{0, 1.0}}), "short");
  db.add(vsm::SparseVector::from_entries({{0, 10.0}}), "long");
  const auto query = vsm::SparseVector::from_entries({{0, 9.0}});
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    EXPECT_EQ(db.classify_by_syndrome(query, SimilarityMetric::kCosine, policy),
              "short");
    EXPECT_EQ(
        db.classify_by_syndrome(query, SimilarityMetric::kEuclidean, policy),
        "long");
  }
}

TEST(QueryEngine, ClassifyBySyndromeAgreesAcrossPoliciesOnShardedDbs) {
  util::Rng rng(0xc1a5);
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase db(shards);
    for (int i = 0; i < 60; ++i) {
      db.add(random_sparse(rng, 40, 9), "label-" + std::to_string(i % 6));
    }
    for (int q = 0; q < 20; ++q) {
      const auto query = random_sparse(rng, 40, 9);
      for (const auto metric :
           {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
        EXPECT_EQ(db.classify_by_syndrome(query, metric, ScanPolicy::kIndexed),
                  db.classify_by_syndrome(query, metric,
                                          ScanPolicy::kBruteForce))
            << "shards " << shards << " query " << q;
      }
    }
  }
}

TEST(QueryEngine, RetrievalEvaluationIdenticalAcrossPoliciesAndShards) {
  util::Rng rng(0x6e7a);
  std::vector<RetrievalQuery> queries;
  for (int q = 0; q < 25; ++q) {
    RetrievalQuery query;
    query.signature = random_sparse(rng, 32, 8);
    query.true_label = "label-" + std::to_string(rng.below(4));
    queries.push_back(std::move(query));
  }
  for (const std::size_t shards : kShardCounts) {
    SignatureDatabase db(shards);
    util::Rng corpus_rng(0xfeed);  // same corpus for every shard count
    for (int i = 0; i < 50; ++i) {
      db.add(random_sparse(corpus_rng, 32, 8), "label-" + std::to_string(i % 4));
    }
    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      const auto indexed =
          evaluate_retrieval(db, queries, 5, metric, ScanPolicy::kIndexed);
      const auto scanned =
          evaluate_retrieval(db, queries, 5, metric, ScanPolicy::kBruteForce);
      EXPECT_EQ(indexed.precision_at_k, scanned.precision_at_k)
          << "shards " << shards;
      EXPECT_EQ(indexed.mean_reciprocal_rank, scanned.mean_reciprocal_rank)
          << "shards " << shards;
      EXPECT_EQ(indexed.top1_accuracy, scanned.top1_accuracy)
          << "shards " << shards;
    }
  }
}

TEST(QueryEngine, SearchesIssuedFromInsidePoolTasksDoNotDeadlock) {
  // Every worker of a fixed-size pool running a search that fans subtasks
  // out to the *same* pool used to be a guaranteed deadlock (all workers
  // blocked as submitters). The engine must detect worker re-entry and run
  // inline instead — with identical results.
  util::Rng rng(0xdead);
  exec::ShardedIndex index(4);
  // Big enough to clear the engine's small-index inline cutoff: this test
  // must reach the dispatch path, or the re-entry guard goes unexercised.
  for (int i = 0; i < 5000; ++i) index.add(random_sparse(rng, 32, 8));

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 4; ++q) queries.push_back(random_sparse(rng, 32, 8));

  exec::TaskPool pool(2);
  const exec::QueryEngine engine(index, &pool);
  std::vector<std::future<std::vector<exec::IndexHit>>> pending;
  // 2x more nested searches than workers: without the inline fallback at
  // least two of these would block on subtasks nobody can pick up.
  for (int i = 0; i < 4; ++i) {
    pending.push_back(pool.submit(
        [&engine, &queries, i] { return engine.run(queries[i % 4], 6); }));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto nested = pending[i].get();
    const auto direct = engine.run(queries[i % 4], 6);
    ASSERT_EQ(nested.size(), direct.size()) << "nested search " << i;
    for (std::size_t r = 0; r < nested.size(); ++r) {
      EXPECT_EQ(nested[r].doc, direct[r].doc);
      EXPECT_EQ(nested[r].score, direct[r].score);
    }
  }
}

TEST(QueryEngine, PointerBatchMatchesValueBatch) {
  util::Rng rng(0x9019);
  SignatureDatabase db(3);
  for (int i = 0; i < 30; ++i) {
    db.add(random_sparse(rng, 24, 7), "label-" + std::to_string(i % 3));
  }
  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 10; ++q) queries.push_back(random_sparse(rng, 24, 7));
  std::vector<const vsm::SparseVector*> pointers;
  for (const auto& query : queries) pointers.push_back(&query);

  const auto by_value = db.search_batch(queries, 5);
  const auto by_pointer = db.search_batch(pointers, 5);
  ASSERT_EQ(by_value.size(), by_pointer.size());
  for (std::size_t q = 0; q < by_value.size(); ++q) {
    expect_hits_identical(by_pointer[q], by_value[q],
                          "pointer batch query " + std::to_string(q));
  }
}

TEST(QueryEngine, DedicatedPoolProducesSameResultsAsSharedPool) {
  util::Rng rng(0x9001);
  exec::ShardedIndex index(4);
  // Above the small-index inline cutoff so both engines actually dispatch.
  for (int i = 0; i < 5000; ++i) index.add(random_sparse(rng, 32, 8));

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 16; ++q) queries.push_back(random_sparse(rng, 32, 8));

  exec::TaskPool own_pool(3);
  const exec::QueryEngine shared_engine(index);
  const exec::QueryEngine own_engine(index, &own_pool);
  for (const auto metric : {exec::Metric::kCosine, exec::Metric::kEuclidean}) {
    const auto from_shared = shared_engine.run_batch(queries, 6, metric);
    const auto from_own = own_engine.run_batch(queries, 6, metric);
    ASSERT_EQ(from_shared.size(), from_own.size());
    for (std::size_t q = 0; q < from_shared.size(); ++q) {
      ASSERT_EQ(from_shared[q].size(), from_own[q].size()) << "query " << q;
      for (std::size_t r = 0; r < from_shared[q].size(); ++r) {
        EXPECT_EQ(from_shared[q][r].doc, from_own[q][r].doc);
        EXPECT_EQ(from_shared[q][r].score, from_own[q][r].score);
      }
    }
  }
}

TEST(QueryEngine, SchedulerStressOversubscribedConcurrentAndNested) {
  // The batch-reservation scheduler under everything at once (run under
  // TSan in CI): a pool oversubscribed well past the host's cores, many
  // threads calling run_batch on the same engine concurrently, nested
  // re-entry from inside pool tasks, and degenerate empty/one-query
  // batches interleaved throughout. Every result must stay bit-identical
  // to a single-threaded reference.
  util::Rng rng(0x57e5);
  exec::ShardedIndex index(5);
  for (int i = 0; i < 6000; ++i) index.add(random_sparse(rng, 32, 8));

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 24; ++q) {
    auto query = random_sparse(rng, 32, 8);
    if (query.empty()) {  // keep the reference lists non-degenerate
      query = vsm::SparseVector::from_entries(
          {{static_cast<vsm::SparseVector::Index>(q), 1.0}});
    }
    queries.push_back(std::move(query));
  }

  // Single-threaded reference through a one-worker pool (always inline).
  exec::TaskPool solo(1);
  const exec::QueryEngine reference_engine(index, &solo);
  const auto reference = reference_engine.run_batch(queries, 7);

  exec::TaskPool pool(exec::TaskPool::Options{
      .num_threads = 3 * std::max(1u, std::thread::hardware_concurrency()),
      .pin_threads = false});
  const exec::QueryEngine engine(index, &pool);

  const auto check = [&](const std::vector<std::vector<exec::IndexHit>>& got,
                         const char* context) {
    ASSERT_EQ(got.size(), reference.size()) << context;
    for (std::size_t q = 0; q < got.size(); ++q) {
      ASSERT_EQ(got[q].size(), reference[q].size()) << context << " q " << q;
      for (std::size_t r = 0; r < got[q].size(); ++r) {
        EXPECT_EQ(got[q][r].doc, reference[q][r].doc) << context << " q " << q;
        EXPECT_EQ(got[q][r].score, reference[q][r].score)
            << context << " q " << q;
      }
    }
  };

  // Nested re-entry: searches issued from inside pool tasks while outside
  // callers hammer the same engine's pooled path.
  std::vector<std::future<std::vector<exec::IndexHit>>> nested;
  for (int i = 0; i < 6; ++i) {
    nested.push_back(pool.submit(
        [&engine, &queries, i] { return engine.run(queries[i % 24], 7); }));
  }

  constexpr int kCallers = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> callers;
  std::vector<std::vector<std::vector<exec::IndexHit>>> outputs(kCallers);
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        // Degenerate batches between real ones: must not disturb anything.
        (void)engine.run_batch(std::span<const vsm::SparseVector>(), 7);
        (void)engine.run_batch({&queries[static_cast<std::size_t>(c)], 1}, 7);
        outputs[c] = engine.run_batch(queries, 7);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    check(outputs[c], ("caller " + std::to_string(c)).c_str());
  }
  for (std::size_t i = 0; i < nested.size(); ++i) {
    const auto hits = nested[i].get();
    ASSERT_EQ(hits.size(), reference[i % 24].size()) << "nested " << i;
    for (std::size_t r = 0; r < hits.size(); ++r) {
      EXPECT_EQ(hits[r].doc, reference[i % 24][r].doc) << "nested " << i;
      EXPECT_EQ(hits[r].score, reference[i % 24][r].score) << "nested " << i;
    }
  }
}

TEST(QueryEngine, SteadyStateDispatchAllocationsStabilize) {
  // The dispatch side reuses every buffer it owns (floors, partial grid,
  // span stats, scratch arenas): after a warm-up batch has sized them, an
  // identical batch must grow nothing — the engine's growth counter stays
  // flat across both the inline and the pooled branch.
  util::Rng rng(0xa110);
  exec::ShardedIndex index(4);
  for (int i = 0; i < 6000; ++i) index.add(random_sparse(rng, 32, 8));

  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 16; ++q) queries.push_back(random_sparse(rng, 32, 8));

  exec::TaskPool pool(3);
  const exec::QueryEngine engine(index, &pool);
  exec::QueryStats stats;
  (void)engine.run_batch(queries, 5, exec::Metric::kCosine,
                         exec::PruningMode::kExact, &stats);
  const auto after_warmup = engine.dispatch_allocations();
  EXPECT_GT(after_warmup, 0u);  // the warm-up is what sizes the buffers
  for (int round = 0; round < 5; ++round) {
    (void)engine.run_batch(queries, 5, exec::Metric::kCosine,
                           exec::PruningMode::kExact, &stats);
    (void)engine.run_batch(queries, 5, exec::Metric::kCosine,
                           exec::PruningMode::kMaxScore, &stats);
  }
  EXPECT_EQ(engine.dispatch_allocations(), after_warmup);

  // Small single queries ride the inline branch on already-sized buffers.
  const auto before_scalar = engine.dispatch_allocations();
  for (int q = 0; q < 8; ++q) (void)engine.run(queries[0], 5);
  EXPECT_EQ(engine.dispatch_allocations(), before_scalar);
}

}  // namespace
}  // namespace fmeter::core
