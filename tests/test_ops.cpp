#include "simkern/ops.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "simkern/trace_hook.hpp"

namespace fmeter::simkern {
namespace {

class CountingHook final : public TraceHook {
 public:
  void on_function_entry(CpuContext&, FunctionId fn,
                         FunctionId) noexcept override {
    ++counts[fn];
    ++total;
  }
  const char* name() const noexcept override { return "counting"; }

  std::map<FunctionId, std::uint64_t> counts;
  std::uint64_t total = 0;
};

class OpsTest : public ::testing::Test {
 protected:
  OpsTest() : kernel_(make_config()), ops_(kernel_) {
    kernel_.install_tracer(&hook_);
  }

  static KernelConfig make_config() {
    KernelConfig config;
    config.num_cpus = 2;
    return config;
  }

  std::set<FunctionId> run_and_collect(
      const std::function<void(KernelOps&, CpuContext&)>& op) {
    hook_.counts.clear();
    hook_.total = 0;
    op(ops_, kernel_.cpu(0));
    std::set<FunctionId> seen;
    for (const auto& [fn, count] : hook_.counts) seen.insert(fn);
    return seen;
  }

  Kernel kernel_;
  KernelOps ops_;
  CountingHook hook_;
};

TEST_F(OpsTest, EveryOpIssuesCalls) {
  const std::vector<std::function<void(KernelOps&, CpuContext&)>> all_ops = {
      [](KernelOps& o, CpuContext& c) { o.simple_syscall(c); },
      [](KernelOps& o, CpuContext& c) { o.simple_read(c); },
      [](KernelOps& o, CpuContext& c) { o.simple_write(c); },
      [](KernelOps& o, CpuContext& c) { o.simple_stat(c); },
      [](KernelOps& o, CpuContext& c) { o.simple_fstat(c); },
      [](KernelOps& o, CpuContext& c) { o.simple_open_close(c); },
      [](KernelOps& o, CpuContext& c) { o.select_fds(c, 10, false); },
      [](KernelOps& o, CpuContext& c) { o.select_fds(c, 10, true); },
      [](KernelOps& o, CpuContext& c) { o.signal_install(c); },
      [](KernelOps& o, CpuContext& c) { o.signal_deliver(c); },
      [](KernelOps& o, CpuContext& c) { o.protection_fault(c); },
      [](KernelOps& o, CpuContext& c) { o.pipe_ping_pong(c); },
      [](KernelOps& o, CpuContext& c) { o.af_unix_ping_pong(c); },
      [](KernelOps& o, CpuContext& c) { o.unix_connection(c); },
      [](KernelOps& o, CpuContext& c) { o.fcntl_lock(c); },
      [](KernelOps& o, CpuContext& c) { o.semaphore_op(c); },
      [](KernelOps& o, CpuContext& c) { o.fork_exit(c); },
      [](KernelOps& o, CpuContext& c) { o.fork_execve(c); },
      [](KernelOps& o, CpuContext& c) { o.fork_sh(c); },
      [](KernelOps& o, CpuContext& c) { o.mmap_file(c, 4); },
      [](KernelOps& o, CpuContext& c) { o.pagefaults(c, 4); },
      [](KernelOps& o, CpuContext& c) { o.open_read_close(c, 4, 0.9); },
      [](KernelOps& o, CpuContext& c) { o.create_write_close(c, 4); },
      [](KernelOps& o, CpuContext& c) { o.unlink_file(c); },
      [](KernelOps& o, CpuContext& c) { o.stat_file(c); },
      [](KernelOps& o, CpuContext& c) { o.fsync_file(c); },
      [](KernelOps& o, CpuContext& c) { o.readdir_dir(c); },
      [](KernelOps& o, CpuContext& c) { o.http_request(c, 1, 0.9); },
      [](KernelOps& o, CpuContext& c) { o.scp_chunk(c, 4); },
      [](KernelOps& o, CpuContext& c) { o.timer_tick(c); },
      [](KernelOps& o, CpuContext& c) { o.context_switch(c); },
      [](KernelOps& o, CpuContext& c) { o.tcp_rx_segment(c, 2); },
      [](KernelOps& o, CpuContext& c) { o.tcp_tx_segment(c, 2); },
      [](KernelOps& o, CpuContext& c) { o.crypto_checksum(c, 2); },
      [](KernelOps& o, CpuContext& c) { o.background_noise(c, 50); },
      [](KernelOps& o, CpuContext& c) { o.futex_contend(c); },
      [](KernelOps& o, CpuContext& c) { o.epoll_wait_cycle(c, 4); },
      [](KernelOps& o, CpuContext& c) { o.epoll_wait_cycle(c, 0); },
      [](KernelOps& o, CpuContext& c) { o.nanosleep_op(c); },
      [](KernelOps& o, CpuContext& c) { o.shm_cycle(c); },
      [](KernelOps& o, CpuContext& c) { o.msgq_send_recv(c); },
  };
  for (std::size_t i = 0; i < all_ops.size(); ++i) {
    const auto seen = run_and_collect(all_ops[i]);
    EXPECT_GT(seen.size(), 0u) << "op " << i << " issued no calls";
  }
}

TEST_F(OpsTest, ReadHitsVfsReadPath) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.simple_read(c); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("sys_read")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("vfs_read")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("copy_to_user")));
}

TEST_F(OpsTest, WritePathDistinctFromReadPath) {
  const auto reads = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.simple_read(c); });
  const auto writes = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.simple_write(c); });
  EXPECT_TRUE(writes.contains(kernel_.id_of("vfs_write")));
  EXPECT_FALSE(writes.contains(kernel_.id_of("vfs_read")));
  EXPECT_FALSE(reads.contains(kernel_.id_of("vfs_write")));
}

TEST_F(OpsTest, ForkPathsTouchProcessLifecycle) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.fork_exit(c); });
  for (const char* name : {"do_fork", "copy_process", "do_exit", "sys_wait4",
                           "release_task"}) {
    EXPECT_TRUE(seen.contains(kernel_.id_of(name))) << name;
  }
}

TEST_F(OpsTest, ExecveLoadsElf) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.fork_execve(c); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("do_execve")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("load_elf_binary")));
}

TEST_F(OpsTest, TcpRxWalksFullStack) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.tcp_rx_segment(c, 8); });
  for (const char* name : {"netif_receive_skb", "ip_rcv", "tcp_v4_rcv",
                           "tcp_rcv_established", "tcp_data_queue"}) {
    EXPECT_TRUE(seen.contains(kernel_.id_of(name))) << name;
  }
}

TEST_F(OpsTest, SelectScalesWithFdCount) {
  run_and_collect([](KernelOps& o, CpuContext& c) { o.select_fds(c, 10, false); });
  const auto total_10 = hook_.total;
  run_and_collect([](KernelOps& o, CpuContext& c) { o.select_fds(c, 100, false); });
  const auto total_100 = hook_.total;
  EXPECT_GT(total_100, total_10 * 5);
}

TEST_F(OpsTest, TcpSelectUsesSockPoll) {
  const auto tcp = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.select_fds(c, 10, true); });
  EXPECT_TRUE(tcp.contains(kernel_.id_of("sock_poll")));
  const auto pipe = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.select_fds(c, 10, false); });
  EXPECT_FALSE(pipe.contains(kernel_.id_of("sock_poll")));
}

TEST_F(OpsTest, ColdReadsReachBlockLayer) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.open_read_close(c, 64, 0.0); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("submit_bio")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("scsi_dispatch_cmd")));
}

TEST_F(OpsTest, HotReadsAvoidBlockLayer) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.open_read_close(c, 8, 1.0); });
  EXPECT_FALSE(seen.contains(kernel_.id_of("scsi_dispatch_cmd")));
}

TEST_F(OpsTest, WritesJournalThroughExt3) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.create_write_close(c, 16); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("ext3_write_begin")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("journal_start")));
}

TEST_F(OpsTest, PreemptCountBalancedAfterEveryOp) {
  auto& cpu = kernel_.cpu(0);
  ops_.fork_sh(cpu);
  ops_.http_request(cpu, 2, 0.5);
  ops_.scp_chunk(cpu, 8);
  ops_.timer_tick(cpu);
  ops_.futex_contend(cpu);
  ops_.shm_cycle(cpu);
  EXPECT_EQ(cpu.preempt_count(), 0u);
}

TEST_F(OpsTest, FutexPathTouchesHashAndWake) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.futex_contend(c); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("hash_futex")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("futex_wait")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("futex_wake")));
}

TEST_F(OpsTest, EpollIdleCycleBlocksInsteadOfDelivering) {
  const auto idle = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.epoll_wait_cycle(c, 0); });
  EXPECT_TRUE(idle.contains(kernel_.id_of("schedule_timeout")));
  EXPECT_FALSE(idle.contains(kernel_.id_of("ep_send_events")));
  const auto busy = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.epoll_wait_cycle(c, 8); });
  EXPECT_TRUE(busy.contains(kernel_.id_of("ep_send_events")));
}

TEST_F(OpsTest, ShmCycleMapsAndUnmaps) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.shm_cycle(c); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("do_shmat")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("do_mmap_pgoff")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("do_munmap")));
}

TEST_F(OpsTest, MsgQueueRoundTrip) {
  const auto seen = run_and_collect(
      [](KernelOps& o, CpuContext& c) { o.msgq_send_recv(c); });
  EXPECT_TRUE(seen.contains(kernel_.id_of("load_msg")));
  EXPECT_TRUE(seen.contains(kernel_.id_of("store_msg")));
}

TEST_F(OpsTest, DeterministicForSameSeed) {
  Kernel kernel_a(make_config());
  Kernel kernel_b(make_config());
  KernelOps ops_a(kernel_a);
  KernelOps ops_b(kernel_b);
  CountingHook hook_a;
  CountingHook hook_b;
  kernel_a.install_tracer(&hook_a);
  kernel_b.install_tracer(&hook_b);
  for (int i = 0; i < 10; ++i) {
    ops_a.http_request(kernel_a.cpu(0), 2, 0.7);
    ops_b.http_request(kernel_b.cpu(0), 2, 0.7);
  }
  EXPECT_EQ(hook_a.counts, hook_b.counts);
}

TEST_F(OpsTest, BootSweepIsHeavyTailed) {
  hook_.counts.clear();
  ops_.boot_init_sweep(kernel_.cpu(0), 200000, 1.5);
  // Rank 0 towers over the median rank (Figure 1 shape).
  const auto head = hook_.counts[0];
  EXPECT_GT(head, 1000u);
  const auto mid = hook_.counts.contains(1900) ? hook_.counts[1900] : 0;
  EXPECT_GT(head, mid * 50);
}

TEST_F(OpsTest, BackgroundNoiseHeadStableAcrossIntervals) {
  // The head of the noise ranking should recur; deep-tail functions only
  // sometimes. Run two "intervals" and compare supports.
  hook_.counts.clear();
  ops_.background_noise(kernel_.cpu(0), 500);
  const auto first = hook_.counts;
  hook_.counts.clear();
  ops_.background_noise(kernel_.cpu(0), 500);
  const auto second = hook_.counts;
  std::size_t in_both = 0;
  for (const auto& [fn, count] : first) in_both += second.contains(fn);
  EXPECT_GT(in_both, first.size() / 4);  // substantial recurring core
  EXPECT_LT(in_both, first.size());      // but not identical support
}

}  // namespace
}  // namespace fmeter::simkern
