// LiveDatabase battery (fmeter/live_database.hpp) — the live-archive
// contract under test:
//
//   * streaming ingest answers bit-identically to a fresh bulk build of
//     the same documents, before and after any number of re-freezes;
//   * a pinned Snapshot stays valid and answers from its own epoch no
//     matter how much ingest / re-freezing happens after the pin;
//   * a re-freeze folds the tail into the base, bumps the manifest epoch,
//     and keeps segments sealed after its capture (the survivor path);
//   * reopening a directory replays snapshot + journal back to the same
//     archive.
//
// The concurrency tests at the bottom run under the TSan CI job and are
// the regression tests for the stats-scrape-vs-ingest race and the
// freeze-during-query race (ISSUE 10 satellites): stats(), shard_stats(),
// memory_bytes() and publish_gauges() must be safe against concurrent
// add_batch/freeze, and queries must be safe against concurrent re-freeze.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/task_pool.hpp"
#include "fmeter/database.hpp"
#include "fmeter/live_database.hpp"
#include "io/env.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

using io::InMemoryEnv;

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = 1 + rng.below(max_nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

struct Batch {
  std::vector<vsm::SparseVector> signatures;
  std::vector<std::string> labels;
};

std::vector<Batch> make_batches(std::size_t count, std::size_t docs_each,
                                std::uint64_t seed = 0x11fe) {
  util::Rng rng(seed);
  std::vector<Batch> batches(count);
  for (std::size_t b = 0; b < count; ++b) {
    for (std::size_t d = 0; d < docs_each; ++d) {
      batches[b].signatures.push_back(random_sparse(rng, 64, 10));
      batches[b].labels.push_back("batch-" + std::to_string(b) + "-doc-" +
                                  std::to_string(d));
    }
  }
  return batches;
}

SignatureDatabase build_reference(const std::vector<Batch>& batches,
                                  std::size_t prefix, std::size_t shards) {
  SignatureDatabase db(shards);
  for (std::size_t b = 0; b < prefix; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }
  return db;
}

/// Bit-identical results between a pinned live snapshot and a fresh bulk
/// build of the documents it should hold — across both pruning modes and
/// both metrics, since the segment-merge path must preserve every mode's
/// guarantee, not just the default's.
void expect_live_equivalent(const LiveDatabase::Snapshot& got,
                            const SignatureDatabase& want,
                            const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t id = 0; id < want.size(); ++id) {
    ASSERT_EQ(got.label(id), want.label(id)) << context << " id " << id;
    ASSERT_TRUE(got.signature(id) == want.signature(id))
        << context << " id " << id;
  }
  util::Rng rng(0x9e17);
  for (int q = 0; q < 4; ++q) {
    const auto query = random_sparse(rng, 64, 10);
    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      for (const auto mode : {index::PruningMode::kExact,
                              index::PruningMode::kMaxScore}) {
        const auto got_hits = got.search(query, 5, metric, mode);
        const auto want_hits = want.search(query, 5, metric,
                                           ScanPolicy::kIndexed, mode);
        ASSERT_EQ(got_hits.size(), want_hits.size())
            << context << " q " << q;
        for (std::size_t r = 0; r < want_hits.size(); ++r) {
          EXPECT_EQ(got_hits[r].id, want_hits[r].id)
              << context << " q " << q << " rank " << r;
          EXPECT_EQ(got_hits[r].label, want_hits[r].label)
              << context << " q " << q << " rank " << r;
          EXPECT_NEAR(got_hits[r].score, want_hits[r].score, 1e-9)
              << context << " q " << q << " rank " << r;
        }
      }
    }
  }
}

LiveOptions foreground_options(std::size_t shards = 2) {
  LiveOptions options;
  options.num_shards = shards;
  options.background_refreeze = false;  // tests fold explicitly
  return options;
}

// ---------------------------------------------------------------------------
// Functional: ingest, fold, pin, reopen
// ---------------------------------------------------------------------------

TEST(LiveDatabase, StreamingIngestMatchesBulkBuild) {
  InMemoryEnv env;
  const auto batches = make_batches(6, 8);
  LiveDatabase db(env, "live", foreground_options());
  EXPECT_TRUE(db.recovery().created);
  EXPECT_EQ(db.size(), 0u);

  std::size_t expected_first = 0;
  for (const Batch& b : batches) {
    EXPECT_EQ(db.add_batch(b.signatures, b.labels), expected_first);
    expected_first += b.signatures.size();
  }

  const auto stats = db.stats();
  EXPECT_EQ(stats.total_docs, 48u);
  EXPECT_EQ(stats.base_docs, 0u);
  EXPECT_EQ(stats.tail_docs, 48u);
  EXPECT_EQ(stats.segments, 6u);
  EXPECT_EQ(stats.manifest_epoch, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);

  expect_live_equivalent(db.snapshot(), build_reference(batches, 6, 2),
                         "pure-tail archive");
}

TEST(LiveDatabase, RefreezeFoldsTailAndPreservesResults) {
  InMemoryEnv env;
  const auto batches = make_batches(6, 8);
  LiveDatabase db(env, "live", foreground_options());
  for (std::size_t b = 0; b < 4; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }

  ASSERT_TRUE(db.refreeze_now());
  EXPECT_EQ(db.refreezes(), 1u);
  EXPECT_EQ(db.manifest_epoch(), 1u);
  auto stats = db.stats();
  EXPECT_EQ(stats.base_docs, 32u);
  EXPECT_EQ(stats.tail_docs, 0u);
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_EQ(stats.base_shards.size(), 2u);
  expect_live_equivalent(db.snapshot(), build_reference(batches, 4, 2),
                         "post-fold");

  // Nothing to fold → false, no epoch bump.
  EXPECT_FALSE(db.refreeze_now());
  EXPECT_EQ(db.manifest_epoch(), 1u);

  // Mixed base + tail keeps answering bit-identically.
  for (std::size_t b = 4; b < 6; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }
  stats = db.stats();
  EXPECT_EQ(stats.base_docs, 32u);
  EXPECT_EQ(stats.tail_docs, 16u);
  expect_live_equivalent(db.snapshot(), build_reference(batches, 6, 2),
                         "base+tail archive");

  ASSERT_TRUE(db.refreeze_now());
  EXPECT_EQ(db.manifest_epoch(), 2u);
  expect_live_equivalent(db.snapshot(), build_reference(batches, 6, 2),
                         "second fold");
}

TEST(LiveDatabase, PinnedSnapshotSurvivesIngestAndRefreeze) {
  InMemoryEnv env;
  const auto batches = make_batches(6, 8);
  LiveDatabase db(env, "live", foreground_options());
  for (std::size_t b = 0; b < 3; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }

  const auto pinned = db.snapshot();
  const std::uint64_t pinned_sequence = pinned.sequence();

  for (std::size_t b = 3; b < 6; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }
  ASSERT_TRUE(db.refreeze_now());
  db.add_batch(batches[0].signatures, batches[0].labels);

  // The pin still answers from its own epoch, untouched.
  EXPECT_EQ(pinned.sequence(), pinned_sequence);
  EXPECT_EQ(pinned.size(), 24u);
  EXPECT_EQ(pinned.manifest_epoch(), 0u);
  expect_live_equivalent(pinned, build_reference(batches, 3, 2),
                         "pinned epoch");

  // A fresh pin sees everything.
  EXPECT_EQ(db.snapshot().size(), 56u);
}

TEST(LiveDatabase, ReopenReplaysSnapshotAndJournal) {
  InMemoryEnv env;
  const auto batches = make_batches(5, 6);
  {
    LiveDatabase db(env, "live", foreground_options());
    for (std::size_t b = 0; b < 3; ++b) {
      db.add_batch(batches[b].signatures, batches[b].labels);
    }
    ASSERT_TRUE(db.refreeze_now());
    for (std::size_t b = 3; b < 5; ++b) {
      db.add_batch(batches[b].signatures, batches[b].labels);
    }
  }

  LiveDatabase reopened(env, "live", foreground_options());
  EXPECT_FALSE(reopened.recovery().created);
  EXPECT_TRUE(reopened.recovery().snapshot_loaded);
  EXPECT_EQ(reopened.recovery().epoch, 1u);
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 2u);
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.base_docs, 18u);   // the folded snapshot
  EXPECT_EQ(stats.tail_docs, 12u);   // replayed journal records
  EXPECT_EQ(stats.segments, 2u);
  expect_live_equivalent(reopened.snapshot(), build_reference(batches, 5, 2),
                         "reopened archive");

  // The reopened archive still ingests and folds.
  reopened.add_batch(batches[0].signatures, batches[0].labels);
  ASSERT_TRUE(reopened.refreeze_now());
  EXPECT_EQ(reopened.manifest_epoch(), 2u);
  EXPECT_EQ(reopened.size(), 36u);
}

TEST(LiveDatabase, BackgroundRefreezeTriggersOnTailGrowth) {
  InMemoryEnv env;
  const auto batches = make_batches(8, 16);
  exec::TaskPool pool(2);
  LiveOptions options;
  options.num_shards = 2;
  options.refreeze_min_docs = 32;   // trip quickly
  options.refreeze_fraction = 0.25;
  options.pool = &pool;
  LiveDatabase db(env, "live", options);

  for (const Batch& b : batches) db.add_batch(b.signatures, b.labels);
  db.wait_for_refreeze();

  EXPECT_GE(db.refreezes(), 1u);
  EXPECT_GE(db.manifest_epoch(), 1u);
  const auto stats = db.stats();
  EXPECT_EQ(stats.total_docs, 128u);
  EXPECT_GT(stats.base_docs, 0u);
  expect_live_equivalent(db.snapshot(), build_reference(batches, 8, 2),
                         "after background folds");
}

TEST(LiveDatabase, SegmentsSealedDuringRefreezeSurviveTheSwap) {
  // The survivor path: a batch sealed between the fold's capture and its
  // commit must stay in the tail of the new epoch AND keep its durable
  // journal copy (it is re-journaled into the new epoch's journal).
  InMemoryEnv env;
  const auto batches = make_batches(4, 8);
  auto options = foreground_options();
  LiveDatabase* handle = nullptr;
  options.after_refreeze_capture = [&] {
    handle->add_batch(batches[2].signatures, batches[2].labels);
  };
  LiveDatabase db(env, "live", options);
  handle = &db;

  db.add_batch(batches[0].signatures, batches[0].labels);
  db.add_batch(batches[1].signatures, batches[1].labels);
  ASSERT_TRUE(db.refreeze_now());  // seals batch 2 mid-fold

  const auto stats = db.stats();
  EXPECT_EQ(stats.base_docs, 16u);  // batches 0+1 folded
  EXPECT_EQ(stats.tail_docs, 8u);   // batch 2 survived as tail
  EXPECT_EQ(stats.segments, 1u);
  expect_live_equivalent(db.snapshot(), build_reference(batches, 3, 2),
                         "survivor epoch");

  // Its re-journaled copy must replay on reopen.
  LiveDatabase reopened(env, "live", foreground_options());
  EXPECT_EQ(reopened.recovery().journal_records_replayed, 1u);
  expect_live_equivalent(reopened.snapshot(), build_reference(batches, 3, 2),
                         "survivor reopen");
}

TEST(LiveDatabase, MalformedBatchLeavesArchiveUnchanged) {
  InMemoryEnv env;
  const auto batches = make_batches(2, 4);
  LiveDatabase db(env, "live", foreground_options());
  db.add_batch(batches[0].signatures, batches[0].labels);

  std::vector<vsm::SparseVector> signatures = batches[1].signatures;
  std::vector<std::string> labels = batches[1].labels;
  labels.pop_back();  // size mismatch
  EXPECT_THROW(db.add_batch(std::move(signatures), std::move(labels)),
               std::invalid_argument);

  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.add_batch({}, {}), 4u);  // empty batch: no-op, returns next id
  expect_live_equivalent(db.snapshot(), build_reference(batches, 1, 2),
                         "after rejected batch");
}

TEST(LiveDatabase, SearchEdgeCases) {
  InMemoryEnv env;
  const auto batches = make_batches(2, 6);
  LiveDatabase db(env, "live", foreground_options());
  EXPECT_TRUE(db.search(batches[0].signatures[0], 5).empty());  // empty db

  db.add_batch(batches[0].signatures, batches[0].labels);
  db.add_batch(batches[1].signatures, batches[1].labels);
  EXPECT_TRUE(db.search(batches[0].signatures[0], 0).empty());  // k == 0
  EXPECT_TRUE(db.search(vsm::SparseVector{}, 5).empty());       // empty query

  // k larger than the archive returns everything, ranked.
  const auto hits = db.search(batches[0].signatures[0], 100);
  EXPECT_EQ(hits.size(), 12u);
  for (std::size_t r = 1; r < hits.size(); ++r) {
    EXPECT_TRUE(hits[r - 1].score > hits[r].score ||
                (hits[r - 1].score == hits[r].score &&
                 hits[r - 1].id < hits[r].id))
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Concurrency (runs under the TSan CI job)
// ---------------------------------------------------------------------------

// Regression: ShardedIndex::shard_stats()/memory_bytes()/stats() used to
// read shard internals racily against concurrent add_batch. A scrape
// thread hammering every stats surface during parallel ingest must be
// TSan-clean and never observe torn state.
TEST(LiveDatabase, StatsScrapeDuringParallelIngestIsSafe) {
  const auto batches = make_batches(32, 8, 0xabba);
  SignatureDatabase db(4);

  std::thread ingester([&] {
    for (const Batch& b : batches) db.add_batch(b.signatures, b.labels);
    db.freeze();
  });
  std::thread scraper([&] {
    for (int i = 0; i < 200; ++i) {
      const auto shard_stats = db.index().shard_stats();
      std::size_t docs = 0;
      for (const auto& s : shard_stats) docs += s.docs;
      EXPECT_LE(docs, 256u);
      (void)db.index().memory_bytes();
      (void)db.index().memory_breakdown();
      (void)db.index().num_postings();
      db.publish_gauges();
    }
  });
  ingester.join();
  scraper.join();
  EXPECT_EQ(db.size(), 256u);
}

// Regression: freeze() concurrent with an outstanding query used to be
// undefined. Queries and freezes now serialize on the index's
// reader/writer lock — every query sees a consistent pre- or post-freeze
// index, never a half-frozen shard.
TEST(LiveDatabase, FreezeDuringQueryIsSafe) {
  const auto batches = make_batches(16, 8, 0xf0f0);
  SignatureDatabase db(4);
  for (std::size_t b = 0; b < 8; ++b) {
    db.add_batch(batches[b].signatures, batches[b].labels);
  }

  std::thread freezer([&] {
    for (std::size_t b = 8; b < 16; ++b) {
      db.add_batch(batches[b].signatures, batches[b].labels);
      db.freeze();
    }
  });
  std::thread querier([&] {
    util::Rng rng(0x51ca);
    for (int q = 0; q < 100; ++q) {
      const auto query = random_sparse(rng, 64, 10);
      const auto hits = db.search(query, 5);
      EXPECT_LE(hits.size(), 5u);
      for (const auto& hit : hits) EXPECT_LT(hit.id, 128u);
    }
  });
  freezer.join();
  querier.join();
  EXPECT_EQ(db.size(), 128u);
}

// The live archive's full concurrent surface: ingest, snapshot queries,
// explicit re-freezes, and stats scrapes all at once, then a reopen that
// must see every batch (ingest is synchronous and journaled).
TEST(LiveDatabase, ConcurrentIngestQueryRefreezeScrape) {
  InMemoryEnv env;
  const auto batches = make_batches(24, 8, 0xcafe);
  exec::TaskPool pool(2);
  LiveOptions options;
  options.num_shards = 2;
  options.refreeze_min_docs = 24;
  options.refreeze_fraction = 0.125;
  options.pool = &pool;
  {
    LiveDatabase db(env, "live", options);

    std::thread ingester([&] {
      for (const Batch& b : batches) db.add_batch(b.signatures, b.labels);
    });
    std::thread querier([&] {
      util::Rng rng(0xbead);
      for (int q = 0; q < 100; ++q) {
        const auto snapshot = db.snapshot();
        const auto query = random_sparse(rng, 64, 10);
        const auto hits = snapshot.search(query, 5);
        EXPECT_LE(hits.size(), 5u);
        for (const auto& hit : hits) EXPECT_LT(hit.id, snapshot.size());
      }
    });
    std::thread folder([&] {
      for (int i = 0; i < 4; ++i) db.refreeze_now();
    });
    std::thread scraper([&] {
      for (int i = 0; i < 100; ++i) {
        const auto stats = db.stats();
        EXPECT_EQ(stats.base_docs + stats.tail_docs, stats.total_docs);
        EXPECT_LE(stats.total_docs, 192u);
        db.publish_gauges();
      }
    });
    ingester.join();
    querier.join();
    folder.join();
    scraper.join();

    EXPECT_EQ(db.size(), 192u);
    expect_live_equivalent(db.snapshot(), build_reference(batches, 24, 2),
                           "post-concurrency");
  }

  LiveDatabase reopened(env, "live", options);
  EXPECT_EQ(reopened.size(), 192u);
  expect_live_equivalent(reopened.snapshot(),
                         build_reference(batches, 24, 2),
                         "post-concurrency reopen");
}

}  // namespace
}  // namespace fmeter::core
