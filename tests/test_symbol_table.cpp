#include "simkern/symbol_table.hpp"

#include <gtest/gtest.h>

#include <set>

namespace fmeter::simkern {
namespace {

TEST(SymbolTable, DefaultPopulationMatchesPaper) {
  const SymbolTable table;
  EXPECT_EQ(table.size(), 3815u);  // Figure 1: 3815 traced functions
}

TEST(SymbolTable, CustomPopulation) {
  SymbolTableConfig config;
  config.total_functions = 1200;
  const SymbolTable table(config);
  EXPECT_EQ(table.size(), 1200u);
}

TEST(SymbolTable, TooSmallForCuratedSetThrows) {
  SymbolTableConfig config;
  config.total_functions = 10;
  EXPECT_THROW(SymbolTable{config}, std::invalid_argument);
}

TEST(SymbolTable, ZeroFunctionsThrows) {
  SymbolTableConfig config;
  config.total_functions = 0;
  EXPECT_THROW(SymbolTable{config}, std::invalid_argument);
}

TEST(SymbolTable, IdsAreDense) {
  const SymbolTable table;
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.by_id(static_cast<FunctionId>(i)).id, i);
  }
}

TEST(SymbolTable, NamesUnique) {
  const SymbolTable table;
  std::set<std::string> names;
  for (const auto& fn : table.functions()) names.insert(fn.name);
  EXPECT_EQ(names.size(), table.size());
}

TEST(SymbolTable, AddressesUniqueAndIncreasing) {
  const SymbolTable table;
  Address previous = 0;
  for (const auto& fn : table.functions()) {
    EXPECT_GT(fn.address, previous);
    previous = fn.address;
  }
  EXPECT_GE(table.functions().front().address, kKernelTextBase);
}

TEST(SymbolTable, CuratedHotPathSymbolsPresent) {
  const SymbolTable table;
  for (const char* name :
       {"schedule", "vfs_read", "tcp_v4_rcv", "do_fork", "kmalloc",
        "ext3_get_block", "submit_bio", "netif_receive_skb", "do_page_fault",
        "lro_receive_skb", "sys_select", "journal_commit_transaction"}) {
    EXPECT_TRUE(table.contains(name)) << name;
  }
}

TEST(SymbolTable, ByNameResolvesAndThrows) {
  const SymbolTable table;
  EXPECT_EQ(table.by_name("schedule").name, "schedule");
  EXPECT_THROW(table.by_name("definitely_not_a_kernel_function"),
               std::out_of_range);
}

TEST(SymbolTable, ByAddressRoundTrip) {
  const SymbolTable table;
  const auto& fn = table.by_name("vfs_write");
  const auto id = table.by_address(fn.address);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, fn.id);
  EXPECT_FALSE(table.by_address(1).has_value());
}

TEST(SymbolTable, DeterministicAcrossConstructions) {
  const SymbolTable a;
  const SymbolTable b;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.by_id(static_cast<FunctionId>(i)).name,
              b.by_id(static_cast<FunctionId>(i)).name);
    EXPECT_EQ(a.by_id(static_cast<FunctionId>(i)).address,
              b.by_id(static_cast<FunctionId>(i)).address);
  }
}

TEST(SymbolTable, DifferentSeedsChangeGeneratedTail) {
  SymbolTableConfig config_a;
  SymbolTableConfig config_b;
  config_b.seed = config_a.seed + 1;
  const SymbolTable a(config_a);
  const SymbolTable b(config_b);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += a.by_id(static_cast<FunctionId>(i)).name !=
                 b.by_id(static_cast<FunctionId>(i)).name;
  }
  EXPECT_GT(differing, 0u);
}

TEST(SymbolTable, EverySubsystemPopulated) {
  const SymbolTable table;
  for (std::size_t s = 0; s < kNumSubsystems; ++s) {
    const auto members = table.subsystem_members(static_cast<Subsystem>(s));
    EXPECT_GT(members.size(), 10u) << subsystem_name(static_cast<Subsystem>(s));
  }
}

TEST(SymbolTable, SubsystemMembersConsistent) {
  const SymbolTable table;
  const auto members = table.subsystem_members(Subsystem::kVfs);
  for (const auto id : members) {
    EXPECT_EQ(table.by_id(id).subsystem, Subsystem::kVfs);
  }
}

TEST(SymbolTable, BodyCostsPositive) {
  const SymbolTable table;
  for (const auto& fn : table.functions()) EXPECT_GE(fn.body_cost, 1u);
}

TEST(SubsystemName, AllNamed) {
  for (std::size_t s = 0; s < kNumSubsystems; ++s) {
    EXPECT_STRNE(subsystem_name(static_cast<Subsystem>(s)), "unknown");
  }
}

}  // namespace
}  // namespace fmeter::simkern
