#include "workloads/smp_runner.hpp"

#include <gtest/gtest.h>

#include "fmeter/system.hpp"

namespace fmeter::workloads {
namespace {

TEST(SmpRunner, RunsOnMultipleCpusConcurrently) {
  core::MonitoredSystem system;
  system.select_tracer(core::TracerKind::kFmeter);
  const simkern::CpuId cpus[] = {0, 1, 2, 3};
  const auto result = run_workload_smp(system.ops(), WorkloadKind::kDbench,
                                       cpus, 10);
  EXPECT_EQ(result.total_units, 40u);
  EXPECT_GT(result.total_calls, 0u);
  EXPECT_GT(result.units_per_second, 0.0);
}

TEST(SmpRunner, FmeterCountsExactUnderConcurrency) {
  core::MonitoredSystem system;
  system.select_tracer(core::TracerKind::kFmeter);
  const simkern::CpuId cpus[] = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto before = system.fmeter().snapshot().total();
  const auto result = run_workload_smp(system.ops(), WorkloadKind::kScp,
                                       cpus, 8);
  const auto after = system.fmeter().snapshot().total();
  // Every dispatched call counted exactly once, no locks involved.
  EXPECT_EQ(after - before, result.total_calls);
}

TEST(SmpRunner, EveryCpuContributes) {
  core::MonitoredSystem system;
  auto& kernel = system.kernel();
  const simkern::CpuId cpus[] = {0, 3, 5};
  std::vector<std::uint64_t> before;
  for (const auto c : cpus) before.push_back(kernel.cpu(c).calls_dispatched());
  run_workload_smp(system.ops(), WorkloadKind::kApachebench, cpus, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(kernel.cpu(cpus[i]).calls_dispatched(), before[i])
        << "cpu " << cpus[i];
  }
  // Untouched CPU stays untouched.
  EXPECT_EQ(kernel.cpu(1).calls_dispatched(), 0u);
}

TEST(SmpRunner, ValidatesCpuList) {
  core::MonitoredSystem system;
  EXPECT_THROW(run_workload_smp(system.ops(), WorkloadKind::kDbench, {}, 1),
               std::invalid_argument);
  const simkern::CpuId duplicate[] = {1, 1};
  EXPECT_THROW(
      run_workload_smp(system.ops(), WorkloadKind::kDbench, duplicate, 1),
      std::invalid_argument);
  const simkern::CpuId out_of_range[] = {99};
  EXPECT_THROW(
      run_workload_smp(system.ops(), WorkloadKind::kDbench, out_of_range, 1),
      std::invalid_argument);
}

TEST(SmpRunner, FtraceRemainsConsistentUnderConcurrency) {
  // The ring buffers are per-CPU; entries_written must equal total calls
  // when buffers are large enough to avoid overruns.
  core::SystemConfig config;
  config.ftrace.buffer_events_per_cpu = 1 << 20;
  core::MonitoredSystem system(config);
  system.select_tracer(core::TracerKind::kFtrace);
  const simkern::CpuId cpus[] = {0, 1, 2, 3};
  const auto result = run_workload_smp(system.ops(), WorkloadKind::kDbench,
                                       cpus, 5);
  EXPECT_EQ(system.ftrace().entries_written(), result.total_calls);
  EXPECT_EQ(system.ftrace().overruns(), 0u);
}

}  // namespace
}  // namespace fmeter::workloads
