#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace fmeter::util {
namespace {

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution dist(100, 1.0);
  double total = 0.0;
  for (std::size_t k = 0; k < dist.size(); ++k) total += dist.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfMonotonicallyDecreasing) {
  ZipfDistribution dist(50, 1.2);
  for (std::size_t k = 1; k < dist.size(); ++k) {
    EXPECT_LT(dist.pmf(k), dist.pmf(k - 1)) << "rank " << k;
  }
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  ZipfDistribution dist(10, 1.0);
  EXPECT_EQ(dist.pmf(10), 0.0);
  EXPECT_EQ(dist.pmf(1000), 0.0);
}

TEST(Zipf, SamplesWithinRange) {
  ZipfDistribution dist(37, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(dist.sample(rng), 37u);
}

TEST(Zipf, HeadDominatesEmpirically) {
  ZipfDistribution dist(1000, 1.0);
  Rng rng(2);
  std::vector<int> histogram(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[dist.sample(rng)];
  // Rank 0 should appear roughly pmf(0)*n times.
  EXPECT_NEAR(histogram[0], dist.pmf(0) * n, 0.1 * dist.pmf(0) * n);
  EXPECT_GT(histogram[0], histogram[10]);
  EXPECT_GT(histogram[10], histogram[500]);
}

TEST(Zipf, HigherExponentConcentratesMass) {
  ZipfDistribution flat(100, 0.5);
  ZipfDistribution steep(100, 2.0);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
  EXPECT_LT(steep.pmf(99), flat.pmf(99));
}

TEST(Zipf, SingleRankAlwaysSampled) {
  ZipfDistribution dist(1, 1.0);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 0u);
}

TEST(Zipf, ZeroRanksThrows) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, WeightsMatchPmf) {
  const auto weights = zipf_weights(20, 1.3);
  ZipfDistribution dist(20, 1.3);
  ASSERT_EQ(weights.size(), 20u);
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(weights[k], dist.pmf(k), 1e-12);
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// The power-law property Figure 1 depends on: log-log rank/frequency is
// near-linear with slope ~ -exponent.
TEST(Zipf, LogLogSlopeMatchesExponent) {
  const double exponent = 1.5;
  ZipfDistribution dist(2000, exponent);
  // slope between rank 1 and rank 100 in log-log space:
  const double slope = (std::log(dist.pmf(99)) - std::log(dist.pmf(0))) /
                       (std::log(100.0) - std::log(1.0));
  EXPECT_NEAR(slope, -exponent, 0.01);
}

}  // namespace
}  // namespace fmeter::util
