// Golden-equivalence suite for the inverted index: for every metric and
// corpus shape, the indexed top-k must equal the brute-force scan top-k —
// same ids, same labels, same ordering, and equal scores.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fmeter/database.hpp"
#include "index/inverted_index.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::core {
namespace {

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz,
                                bool allow_negative = false) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = rng.below(max_nnz + 1);  // may be 0 => empty vector
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto term = static_cast<vsm::SparseVector::Index>(
        rng.below(dimension));
    double value = rng.uniform(0.05, 1.0);
    if (allow_negative && rng.bernoulli(0.3)) value = -value;
    entries.emplace_back(term, value);
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

SignatureDatabase random_db(util::Rng& rng, std::size_t n,
                            std::uint32_t dimension, std::size_t max_nnz,
                            bool allow_negative = false) {
  SignatureDatabase db;
  for (std::size_t i = 0; i < n; ++i) {
    db.add(random_sparse(rng, dimension, max_nnz, allow_negative),
           "label-" + std::to_string(i % 7));
  }
  return db;
}

void expect_hits_identical(const std::vector<SearchHit>& indexed,
                           const std::vector<SearchHit>& scanned,
                           const std::string& context) {
  ASSERT_EQ(indexed.size(), scanned.size()) << context;
  for (std::size_t rank = 0; rank < indexed.size(); ++rank) {
    EXPECT_EQ(indexed[rank].id, scanned[rank].id)
        << context << " rank " << rank;
    EXPECT_EQ(indexed[rank].label, scanned[rank].label)
        << context << " rank " << rank;
    EXPECT_EQ(indexed[rank].score, scanned[rank].score)
        << context << " rank " << rank;
  }
}

void expect_golden_equivalence(const SignatureDatabase& db,
                               const vsm::SparseVector& query, std::size_t k,
                               const std::string& context) {
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    const auto indexed = db.search(query, k, metric, ScanPolicy::kIndexed);
    const auto scanned = db.search(query, k, metric, ScanPolicy::kBruteForce);
    expect_hits_identical(
        indexed, scanned,
        context + (metric == SimilarityMetric::kCosine ? " cosine" : " l2"));
  }
}

TEST(InvertedIndex, IncrementalAddTracksStats) {
  index::InvertedIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.add(vsm::SparseVector::from_entries({{0, 1.0}, {4, 2.0}})), 0u);
  EXPECT_EQ(idx.add(vsm::SparseVector::from_entries({{4, 1.0}})), 1u);
  EXPECT_EQ(idx.add(vsm::SparseVector()), 2u);  // empty doc is still a doc
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.num_terms(), 2u);     // terms 0 and 4
  EXPECT_EQ(idx.num_postings(), 3u);  // 2 + 1 + 0
  EXPECT_DOUBLE_EQ(idx.norm(1), 1.0);
  EXPECT_DOUBLE_EQ(idx.norm(2), 0.0);
}

TEST(InvertedIndex, TopKOnEmptyIndexIsEmpty) {
  const index::InvertedIndex idx;
  EXPECT_TRUE(idx.top_k(vsm::SparseVector::from_entries({{0, 1.0}}), 5).empty());
}

TEST(InvertedIndex, RandomizedCorporaMatchBruteForce) {
  util::Rng rng(0xf33d);
  for (int trial = 0; trial < 20; ++trial) {
    const auto db = random_db(rng, 40 + rng.below(60), 64, 12);
    for (int q = 0; q < 10; ++q) {
      const auto query = random_sparse(rng, 64, 12);
      const std::size_t k = 1 + rng.below(12);
      expect_golden_equivalence(db, query, k,
                                "trial " + std::to_string(trial) + " query " +
                                    std::to_string(q));
    }
  }
}

TEST(InvertedIndex, NegativeWeightsMatchBruteForce) {
  // tf-idf weights are non-negative, but the index must not assume it.
  util::Rng rng(0xbead);
  const auto db = random_db(rng, 60, 32, 10, /*allow_negative=*/true);
  for (int q = 0; q < 20; ++q) {
    const auto query = random_sparse(rng, 32, 10, /*allow_negative=*/true);
    expect_golden_equivalence(db, query, 8, "negative query " +
                                                std::to_string(q));
  }
}

TEST(InvertedIndex, EmptyQueryVectorReturnsNoHitsInBothPaths) {
  util::Rng rng(0xcafe);
  const auto db = random_db(rng, 30, 16, 6);
  // The all-zero/empty query is defined to return no hits — a zero
  // signature carries no evidence to rank by — and both policies (plus the
  // golden-equivalence harness) must agree on that.
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
      EXPECT_TRUE(db.search(vsm::SparseVector(), 10, metric, policy).empty());
    }
  }
  expect_golden_equivalence(db, vsm::SparseVector(), 10, "empty query");
}

TEST(InvertedIndex, EmptyStoredVectorsMatchBruteForce) {
  SignatureDatabase db;
  db.add(vsm::SparseVector(), "empty-0");
  db.add(vsm::SparseVector::from_entries({{1, 1.0}}), "one");
  db.add(vsm::SparseVector(), "empty-2");
  db.add(vsm::SparseVector::from_entries({{1, 0.5}, {2, 0.5}}), "two");
  const auto query = vsm::SparseVector::from_entries({{1, 1.0}});
  expect_golden_equivalence(db, query, 4, "empty stored");
  // Cosine against an empty vector is 0, so both empties rank after the
  // matches, ordered by ascending id.
  const auto hits = db.search(query, 4);
  EXPECT_EQ(hits[2].id, 0u);
  EXPECT_EQ(hits[3].id, 2u);
}

TEST(InvertedIndex, DuplicateScoresTieBreakByAscendingId) {
  SignatureDatabase db;
  // Five exact duplicates: every score ties, so ranking must be id order.
  const auto v = vsm::SparseVector::from_entries({{3, 1.0}}).l2_normalized();
  for (int i = 0; i < 5; ++i) db.add(v, "dup");
  const auto query = vsm::SparseVector::from_entries({{3, 2.0}});
  for (const auto metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
    for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
      const auto hits = db.search(query, 3, metric, policy);
      ASSERT_EQ(hits.size(), 3u);
      EXPECT_EQ(hits[0].id, 0u);
      EXPECT_EQ(hits[1].id, 1u);
      EXPECT_EQ(hits[2].id, 2u);
    }
  }
  expect_golden_equivalence(db, query, 5, "duplicates");
}

TEST(InvertedIndex, ExactMatchEuclideanScoreIsNegativeZeroInBothPaths) {
  // The scan negates the distance's +0.0, producing -0.0; the index's clamp
  // must match it bit-for-bit, sign included.
  SignatureDatabase db;
  const auto v = vsm::SparseVector::from_entries({{2, 0.6}, {9, 0.8}});
  db.add(v, "self");
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    const auto hits = db.search(v, 1, SimilarityMetric::kEuclidean, policy);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].score, 0.0);
    EXPECT_TRUE(std::signbit(hits[0].score));
  }
}

TEST(InvertedIndex, KLargerThanSizeClamps) {
  util::Rng rng(0x5eed);
  const auto db = random_db(rng, 7, 16, 5);
  // Non-empty by construction: the clamp behavior under test must not
  // collapse into the empty-query "no hits" rule.
  const auto query = vsm::SparseVector::from_entries({{2, 0.7}, {9, 0.4}});
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    EXPECT_EQ(db.search(query, 100, SimilarityMetric::kCosine, policy).size(),
              7u);
  }
  expect_golden_equivalence(db, query, 100, "k > size");
}

TEST(InvertedIndex, KZeroReturnsNothing) {
  util::Rng rng(1);
  const auto db = random_db(rng, 5, 8, 4);
  const auto query = random_sparse(rng, 8, 4);
  for (const auto policy : {ScanPolicy::kIndexed, ScanPolicy::kBruteForce}) {
    EXPECT_TRUE(db.search(query, 0, SimilarityMetric::kCosine, policy).empty());
  }
}

TEST(InvertedIndex, ClassifyBySyndromeAgreesAcrossPolicies) {
  util::Rng rng(0xabcd);
  const auto db = random_db(rng, 80, 48, 10);
  for (int q = 0; q < 30; ++q) {
    const auto query = random_sparse(rng, 48, 10);
    for (const auto metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kEuclidean}) {
      EXPECT_EQ(db.classify_by_syndrome(query, metric, ScanPolicy::kIndexed),
                db.classify_by_syndrome(query, metric,
                                        ScanPolicy::kBruteForce))
          << "query " << q;
    }
  }
}

TEST(InvertedIndex, QueryWithTermsBeyondIndexedSpace) {
  SignatureDatabase db;
  db.add(vsm::SparseVector::from_entries({{0, 1.0}}), "low");
  // Query mentions term 1000, which no stored signature has.
  const auto query =
      vsm::SparseVector::from_entries({{0, 0.5}, {1000, 1.0}});
  expect_golden_equivalence(db, query, 1, "out-of-space term");
}

TEST(InvertedIndex, IncrementalAddsStayEquivalent) {
  util::Rng rng(0x1d00);
  SignatureDatabase db;
  for (int i = 0; i < 50; ++i) {
    db.add(random_sparse(rng, 24, 8), "label-" + std::to_string(i % 3));
    const auto query = random_sparse(rng, 24, 8);
    expect_golden_equivalence(db, query, 5,
                              "after add " + std::to_string(i));
  }
}

}  // namespace
}  // namespace fmeter::core
