// PruneStats / QueryStats aggregation invariants.
//
// The counters are the observability surface of the whole query engine
// (fmeter_inspect prints them, the benches gate on them), so their
// arithmetic has contracts of its own: per-query they partition the corpus
// (docs_scored + docs_pruned == documents considered), they *accumulate*
// into whatever struct the caller passes (so summing per-query structs
// equals one shared struct across a batch, across any shard count and any
// task split), scratch reuse between queries must not leak counts, skipped
// blocks can never contribute visited postings, and forward_gathers counts
// only candidate-mode forward-store fetches (zero on the exact path, never
// more than docs_scored on the pruned path).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exec/query_engine.hpp"
#include "exec/sharded_index.hpp"
#include "exec/task_pool.hpp"
#include "index/inverted_index.hpp"
#include "util/rng.hpp"
#include "vsm/sparse_vector.hpp"

namespace fmeter::index {
namespace {

vsm::SparseVector random_sparse(util::Rng& rng, std::uint32_t dimension,
                                std::size_t max_nnz) {
  std::vector<vsm::SparseVector::Entry> entries;
  const std::size_t nnz = 1 + rng.below(max_nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    entries.emplace_back(
        static_cast<vsm::SparseVector::Index>(rng.below(dimension)),
        rng.uniform(0.05, 1.0));
  }
  return vsm::SparseVector::from_entries(std::move(entries));
}

/// A clustered corpus (a few tight classes) where pruning and block
/// skipping actually fire — uniform random corpora prune nothing.
std::vector<vsm::SparseVector> clustered_corpus(std::uint64_t seed,
                                                std::size_t docs) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> out;
  out.reserve(docs);
  for (std::size_t d = 0; d < docs; ++d) {
    const std::uint32_t base = 40 * static_cast<std::uint32_t>(d % 5);
    std::vector<vsm::SparseVector::Entry> entries;
    for (int i = 0; i < 8; ++i) {
      entries.emplace_back(base + rng.below(12), rng.uniform(0.5, 1.0));
    }
    entries.emplace_back(200 + rng.below(20), rng.uniform(0.0, 0.05) + 0.01);
    out.push_back(
        vsm::SparseVector::from_entries(std::move(entries)).l2_normalized());
  }
  return out;
}

void expect_stats_equal(const PruneStats& got, const PruneStats& want,
                        const std::string& context) {
  EXPECT_EQ(got.docs_scored, want.docs_scored) << context;
  EXPECT_EQ(got.docs_pruned, want.docs_pruned) << context;
  EXPECT_EQ(got.postings_visited, want.postings_visited) << context;
  EXPECT_EQ(got.blocks_skipped, want.blocks_skipped) << context;
  EXPECT_EQ(got.forward_gathers, want.forward_gathers) << context;
}

TEST(QueryStats, ExactPathCountersAreExactlyDetermined) {
  util::Rng rng(0xe1);
  InvertedIndex idx;
  for (int i = 0; i < 300; ++i) idx.add(random_sparse(rng, 64, 10));
  for (const bool frozen : {false, true}) {
    if (frozen) idx.freeze();
    for (int q = 0; q < 6; ++q) {
      const auto query = random_sparse(rng, 64, 10);
      PruneStats stats;
      idx.top_k(query, 10, Metric::kCosine, nullptr,
      index::InvertedIndex::kNoSeed, &stats);
      EXPECT_EQ(stats.docs_scored, idx.size());
      EXPECT_EQ(stats.docs_pruned, 0u);
      EXPECT_EQ(stats.postings_visited, idx.num_postings_for(query));
      EXPECT_EQ(stats.blocks_skipped, 0u);
      EXPECT_EQ(stats.forward_gathers, 0u);
    }
  }
}

TEST(QueryStats, CountersAccumulateAndFreshStructsSumToShared) {
  // One shared struct across N queries == the sum of N per-query structs:
  // counters are increments, never absolute writes, so scratch reuse and
  // stats reuse cannot leak or reset each other's counts.
  const auto docs = clustered_corpus(0xacc, 800);
  InvertedIndex idx;
  for (const auto& doc : docs) idx.add(doc);
  idx.freeze();

  util::Rng rng(0x5);
  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 8; ++q) queries.push_back(docs[rng.below(docs.size())]);

  for (const bool pruned : {false, true}) {
    TopKScratch scratch;
    PruneStats shared;
    PruneStats summed;
    for (const auto& query : queries) {
      PruneStats per_query;
      if (pruned) {
        idx.top_k_pruned(query, 5, Metric::kCosine, &scratch,
                         InvertedIndex::kNoSeed, &shared);
        idx.top_k_pruned(query, 5, Metric::kCosine, &scratch,
                         InvertedIndex::kNoSeed, &per_query);
      } else {
        idx.top_k(query, 5, Metric::kCosine, &scratch,
                  index::InvertedIndex::kNoSeed, &shared);
        idx.top_k(query, 5, Metric::kCosine, &scratch,
                  index::InvertedIndex::kNoSeed, &per_query);
      }
      // Per-query partition invariant.
      EXPECT_EQ(per_query.docs_scored + per_query.docs_pruned, idx.size());
      EXPECT_LE(per_query.forward_gathers, per_query.docs_scored);
      summed += per_query;
    }
    expect_stats_equal(shared, summed,
                       pruned ? "pruned shared-vs-summed"
                              : "exact shared-vs-summed");
  }
}

TEST(QueryStats, SkippedBlocksNeverContributeVisitedPostings) {
  // Cluster-in-noise regime (the workload block skipping exists for — see
  // test_frozen_index's BlockSkippingReducesPostingsVisited): the cluster's
  // posting lists are mostly noise postings, so the tail phase has whole
  // blocks of already-pruned documents to drop. Invariant under test:
  // every skipped block holds at least one posting that was not visited,
  // so visited <= total - skipped — skipped blocks never contribute
  // visited postings.
  util::Rng rng(0xb10c);
  constexpr std::size_t kClusterDocs = 300;
  constexpr std::size_t kNoiseDocs = 8000;
  constexpr std::uint32_t kClusterTerms = 30;
  constexpr std::uint32_t kDim = 400;
  InvertedIndex idx;
  for (std::size_t d = 0; d < kClusterDocs; ++d) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (std::uint32_t t = 0; t < kClusterTerms; ++t) {
      entries.emplace_back(t, 1.0 + 0.01 * rng.uniform());
    }
    idx.add(vsm::SparseVector::from_entries(std::move(entries))
                .l2_normalized());
  }
  for (std::size_t d = 0; d < kNoiseDocs; ++d) {
    std::vector<vsm::SparseVector::Entry> entries;
    entries.emplace_back(static_cast<std::uint32_t>(d % kClusterTerms), 0.2);
    for (int i = 0; i < 20; ++i) {
      entries.emplace_back(
          kClusterTerms +
              static_cast<std::uint32_t>(rng.below(kDim - kClusterTerms)),
          0.5 + rng.uniform());
    }
    idx.add(vsm::SparseVector::from_entries(std::move(entries))
                .l2_normalized());
  }
  idx.freeze();

  std::vector<vsm::SparseVector::Entry> q_entries;
  for (std::uint32_t t = 0; t < kClusterTerms; ++t) {
    q_entries.emplace_back(t, 1.0);
  }
  const auto query =
      vsm::SparseVector::from_entries(std::move(q_entries)).l2_normalized();

  std::size_t skips_seen = 0;
  for (const std::size_t k : {std::size_t{10}, std::size_t{100}}) {
    PruneStats stats;
    idx.top_k_pruned(query, k, Metric::kCosine, nullptr,
                     InvertedIndex::kNoSeed, &stats);
    const std::size_t total = idx.num_postings_for(query);
    EXPECT_LE(stats.postings_visited + stats.blocks_skipped, total)
        << "k " << k;
    EXPECT_EQ(stats.docs_scored + stats.docs_pruned, idx.size()) << "k " << k;
    skips_seen += stats.blocks_skipped;
  }
  EXPECT_GT(skips_seen, 0u) << "cluster-in-noise corpus produced no skips";
}

TEST(QueryStats, EngineSumsAcrossShardsAndBatchedTasks) {
  // Exact mode is deterministic, so the engine totals must equal the sum
  // of independent per-shard runs — for every shard count, scalar or
  // batched, inline or through the pool.
  const auto docs = clustered_corpus(0x5a7d, 5000);  // above dispatch cutoff
  util::Rng rng(0x44);
  std::vector<vsm::SparseVector> queries;
  for (int q = 0; q < 12; ++q) queries.push_back(docs[rng.below(docs.size())]);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{5}}) {
    exec::ShardedIndex index(shards);
    for (const auto& doc : docs) index.add(doc);
    index.freeze();

    // Expected totals from direct per-shard exact runs.
    PruneStats expected;
    for (const auto& query : queries) {
      for (std::size_t s = 0; s < shards; ++s) {
        index.shard(s).top_k(query, 5, Metric::kCosine, nullptr,
                             index::InvertedIndex::kNoSeed, &expected);
      }
    }

    exec::TaskPool pool(3);
    const exec::QueryEngine engine(index, &pool);
    const std::string context = std::to_string(shards) + " shards";

    exec::QueryStats batched;
    engine.run_batch(std::span<const vsm::SparseVector>(queries), 5,
                     Metric::kCosine, PruningMode::kExact, &batched);
    expect_stats_equal(batched, expected, context + " batched");

    exec::QueryStats scalar;
    for (const auto& query : queries) {
      engine.run(query, 5, Metric::kCosine, PruningMode::kExact, &scalar);
    }
    expect_stats_equal(scalar, expected, context + " scalar");

    // Pruned mode is not bit-deterministic across task interleavings (the
    // cross-shard seeding floor is racy by design), but the partition
    // invariant must still hold in aggregate.
    exec::QueryStats pruned;
    engine.run_batch(std::span<const vsm::SparseVector>(queries), 5,
                     Metric::kCosine, PruningMode::kMaxScore, &pruned);
    EXPECT_EQ(pruned.docs_scored + pruned.docs_pruned,
              docs.size() * queries.size())
        << context;
    EXPECT_LE(pruned.forward_gathers, pruned.docs_scored) << context;
  }
}

TEST(QueryStats, ForwardGathersFireInCandidateModeOnly) {
  // A needle-in-haystack query against a clustered frozen corpus collapses
  // the survivor set, which is what flips the pruned path into candidate
  // mode — forward_gathers must then be positive, bounded by docs_scored,
  // and exactly zero on the exact path over the same index.
  const auto docs = clustered_corpus(0xf0a4, 4000);
  InvertedIndex idx;
  for (const auto& doc : docs) idx.add(doc);
  idx.freeze();

  util::Rng rng(0x21);
  std::size_t gathers_seen = 0;
  for (int q = 0; q < 12; ++q) {
    const auto& query = docs[rng.below(docs.size())];
    PruneStats pruned;
    idx.top_k_pruned(query, 3, Metric::kCosine, nullptr,
                     InvertedIndex::kNoSeed, &pruned);
    EXPECT_LE(pruned.forward_gathers, pruned.docs_scored) << "query " << q;
    gathers_seen += pruned.forward_gathers;

    PruneStats exact;
    idx.top_k(query, 3, Metric::kCosine, nullptr,
              index::InvertedIndex::kNoSeed, &exact);
    EXPECT_EQ(exact.forward_gathers, 0u) << "query " << q;
  }
  EXPECT_GT(gathers_seen, 0u)
      << "no query entered candidate mode on the clustered corpus";
}

}  // namespace
}  // namespace fmeter::index
