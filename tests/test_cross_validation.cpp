#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

Dataset gaussian_class(std::size_t n, double center, int label,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<vsm::SparseVector::Entry> entries;
    for (int d = 0; d < 5; ++d) {
      entries.emplace_back(d, center + rng.normal(0.0, 0.3));
    }
    data.push_back(
        {vsm::SparseVector::from_entries(std::move(entries)).l2_normalized(),
         label});
  }
  return data;
}

TEST(CrossValidation, PerfectOnSeparableData) {
  const Dataset positives = gaussian_class(40, 2.0, +1, 1);
  const Dataset negatives = gaussian_class(40, -2.0, -1, 2);
  CrossValidationConfig config;
  config.num_folds = 10;
  const auto result = cross_validate_svm(positives, negatives, config);
  ASSERT_EQ(result.folds.size(), 10u);
  EXPECT_DOUBLE_EQ(result.mean_accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_precision(), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_recall(), 1.0);
  EXPECT_DOUBLE_EQ(result.stddev_accuracy(), 0.0);
}

TEST(CrossValidation, BaselineIsMajorityFraction) {
  const Dataset positives = gaussian_class(30, 1.0, +1, 3);
  const Dataset negatives = gaussian_class(60, -1.0, -1, 4);
  CrossValidationConfig config;
  config.num_folds = 5;
  const auto result = cross_validate_svm(positives, negatives, config);
  EXPECT_NEAR(result.baseline_accuracy, 60.0 / 90.0, 1e-12);
}

TEST(CrossValidation, EveryFoldTestedOnce) {
  const Dataset positives = gaussian_class(30, 2.0, +1, 5);
  const Dataset negatives = gaussian_class(30, -2.0, -1, 6);
  CrossValidationConfig config;
  config.num_folds = 6;
  const auto result = cross_validate_svm(positives, negatives, config);
  std::size_t total_tested = 0;
  for (const auto& fold : result.folds) {
    total_tested += fold.test_confusion.total();
  }
  // The union of test folds is the whole dataset, each example exactly once.
  EXPECT_EQ(total_tested, positives.size() + negatives.size());
}

TEST(CrossValidation, ChosenCFromGrid) {
  const Dataset positives = gaussian_class(20, 2.0, +1, 7);
  const Dataset negatives = gaussian_class(20, -2.0, -1, 8);
  CrossValidationConfig config;
  config.num_folds = 4;
  config.c_grid = {0.5, 7.0};
  const auto result = cross_validate_svm(positives, negatives, config);
  for (const auto& fold : result.folds) {
    EXPECT_TRUE(fold.chosen_c == 0.5 || fold.chosen_c == 7.0);
    EXPECT_GE(fold.validation_accuracy, 0.5);
  }
}

TEST(CrossValidation, TooFewFoldsThrows) {
  const Dataset positives = gaussian_class(10, 1.0, +1, 9);
  const Dataset negatives = gaussian_class(10, -1.0, -1, 10);
  CrossValidationConfig config;
  config.num_folds = 2;  // no room for train/validation/test split
  EXPECT_THROW(cross_validate_svm(positives, negatives, config),
               std::invalid_argument);
}

TEST(CrossValidation, TooFewExamplesThrows) {
  const Dataset positives = gaussian_class(3, 1.0, +1, 11);
  const Dataset negatives = gaussian_class(30, -1.0, -1, 12);
  CrossValidationConfig config;
  config.num_folds = 10;
  EXPECT_THROW(cross_validate_svm(positives, negatives, config),
               std::invalid_argument);
}

TEST(CrossValidation, WrongLabelsThrow) {
  Dataset positives = gaussian_class(10, 1.0, +1, 13);
  Dataset negatives = gaussian_class(10, -1.0, -1, 14);
  positives[0].label = -1;
  CrossValidationConfig config;
  config.num_folds = 3;
  EXPECT_THROW(cross_validate_svm(positives, negatives, config),
               std::invalid_argument);
  positives[0].label = +1;
  negatives[0].label = +1;
  EXPECT_THROW(cross_validate_svm(positives, negatives, config),
               std::invalid_argument);
}

TEST(CrossValidation, EmptyCGridThrows) {
  const Dataset positives = gaussian_class(10, 1.0, +1, 15);
  const Dataset negatives = gaussian_class(10, -1.0, -1, 16);
  CrossValidationConfig config;
  config.num_folds = 3;
  config.c_grid = {};
  EXPECT_THROW(cross_validate_svm(positives, negatives, config),
               std::invalid_argument);
}

TEST(CrossValidation, DeterministicForSeed) {
  const Dataset positives = gaussian_class(20, 1.5, +1, 17);
  const Dataset negatives = gaussian_class(20, -1.5, -1, 18);
  CrossValidationConfig config;
  config.num_folds = 4;
  config.seed = 77;
  const auto a = cross_validate_svm(positives, negatives, config);
  const auto b = cross_validate_svm(positives, negatives, config);
  EXPECT_EQ(a.mean_accuracy(), b.mean_accuracy());
  EXPECT_EQ(a.folds[0].chosen_c, b.folds[0].chosen_c);
}

TEST(Dataset, SampleWithoutReplacement) {
  util::Rng rng(1);
  Dataset population = gaussian_class(20, 0.0, +1, 19);
  const Dataset sample = sample_without_replacement(population, 5, rng);
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_THROW(sample_without_replacement(population, 21, rng),
               std::invalid_argument);
}

TEST(Dataset, WithLabelAndDistinct) {
  Dataset data = gaussian_class(5, 0.0, +1, 20);
  Dataset negatives = gaussian_class(3, 0.0, -1, 21);
  data.insert(data.end(), negatives.begin(), negatives.end());
  EXPECT_EQ(with_label(data, +1).size(), 5u);
  EXPECT_EQ(with_label(data, -1).size(), 3u);
  const auto labels = distinct_labels(data);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], +1);
  EXPECT_EQ(labels[1], -1);
}

TEST(Dataset, MajorityBaseline) {
  Dataset data = gaussian_class(7, 0.0, +1, 22);
  Dataset negatives = gaussian_class(3, 0.0, -1, 23);
  data.insert(data.end(), negatives.begin(), negatives.end());
  EXPECT_DOUBLE_EQ(majority_baseline(data), 0.7);
  EXPECT_EQ(majority_baseline({}), 0.0);
}

}  // namespace
}  // namespace fmeter::ml
