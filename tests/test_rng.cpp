#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace fmeter::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 9.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 9.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::array<int, 7> histogram{};
  for (int i = 0; i < 7000; ++i) ++histogram[rng.below(7)];
  for (const int count : histogram) EXPECT_GT(count, 700);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(14);
  const int n = 50000;
  for (const double shape : {0.5, 1.0, 3.0, 9.0}) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.05) << "shape=" << shape;
  }
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(15);
  for (const double mean : {0.5, 4.0, 30.0, 200.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, std::max(0.05, mean * 0.05)) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(16);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(20);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  auto shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, items);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace fmeter::util
