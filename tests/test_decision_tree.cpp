#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

vsm::SparseVector vec2(double x, double y) {
  return vsm::SparseVector::from_entries({{0, x}, {1, y}});
}

Dataset linearly_separable(std::size_t per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    data.push_back(
        {vec2(1.0 + rng.normal(0.0, 0.2), rng.normal(0.0, 1.0)), +1});
    data.push_back(
        {vec2(-1.0 + rng.normal(0.0, 0.2), rng.normal(0.0, 1.0)), -1});
  }
  return data;
}

double train_accuracy(const auto& model, const Dataset& data) {
  std::size_t correct = 0;
  for (const auto& example : data) {
    correct += model.predict(example.x) == example.label;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(DecisionTree, SeparatesAxisAlignedClasses) {
  const Dataset data = linearly_separable(40, 1);
  const DecisionTree tree = train_decision_tree(data);
  EXPECT_DOUBLE_EQ(train_accuracy(tree, data), 1.0);
  // One threshold on feature 0 suffices: tiny tree.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTree, ExpressesAxisAlignedConjunctions) {
  // label +1 iff x > 0 AND y > 0: a quadrant concept no single linear
  // boundary can carve exactly, but two nested axis splits express it —
  // the structural advantage trees have over the SVM's hyperplane. (XOR,
  // by contrast, is the canonical *failure* mode of greedy gain-based
  // splitting: on balanced XOR every single split has ~zero gain, so no
  // C4.5-style tree reliably finds it; see the SVM tests for the kernel
  // solution.)
  util::Rng rng(2);
  Dataset data;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(-2.0, 2.0);
    const double y = rng.uniform(-2.0, 2.0);
    if (std::abs(x) < 0.05 || std::abs(y) < 0.05) continue;  // margin
    data.push_back({vec2(x, y), x > 0.0 && y > 0.0 ? +1 : -1});
  }
  const DecisionTree tree = train_decision_tree(data);
  EXPECT_DOUBLE_EQ(train_accuracy(tree, data), 1.0);
}

TEST(DecisionTree, DepthLimitRespected) {
  const Dataset data = linearly_separable(50, 3);
  DecisionTreeConfig config;
  config.max_depth = 1;
  const DecisionTree stump = train_decision_tree(data, config);
  EXPECT_LE(stump.depth(), 1u);
  EXPECT_LE(stump.node_count(), 3u);
}

TEST(DecisionTree, PureDataGivesSingleLeaf) {
  Dataset data;
  data.push_back({vec2(1, 1), +1});
  data.push_back({vec2(2, 2), +1});
  const DecisionTree tree = train_decision_tree(data);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(vec2(-5, -5)), +1);
}

TEST(DecisionTree, WeightsShiftTheDecision) {
  // Two overlapping points; the heavier class wins the leaf.
  Dataset data;
  data.push_back({vec2(0, 0), +1});
  data.push_back({vec2(0, 0), -1});
  const std::vector<double> favor_positive = {10.0, 1.0};
  const std::vector<double> favor_negative = {1.0, 10.0};
  EXPECT_EQ(train_decision_tree(data, {}, favor_positive).predict(vec2(0, 0)),
            +1);
  EXPECT_EQ(train_decision_tree(data, {}, favor_negative).predict(vec2(0, 0)),
            -1);
}

TEST(DecisionTree, EmptyDatasetThrows) {
  EXPECT_THROW(train_decision_tree({}), std::invalid_argument);
}

TEST(DecisionTree, BadLabelThrows) {
  Dataset data;
  data.push_back({vec2(0, 0), 3});
  EXPECT_THROW(train_decision_tree(data), std::invalid_argument);
}

TEST(DecisionTree, WeightArityMismatchThrows) {
  Dataset data = linearly_separable(5, 4);
  const std::vector<double> weights = {1.0};
  EXPECT_THROW(train_decision_tree(data, {}, weights), std::invalid_argument);
}

TEST(DecisionTree, DecisionValueSignMatchesPrediction) {
  const Dataset data = linearly_separable(30, 5);
  const DecisionTree tree = train_decision_tree(data);
  for (const auto& example : data) {
    const double value = tree.decision_value(example.x);
    EXPECT_EQ(tree.predict(example.x), value >= 0.0 ? +1 : -1);
    EXPECT_LE(std::abs(value), 1.0);
  }
}

TEST(DecisionTree, SparseAbsentFeaturesReadAsZero) {
  // Split on a feature that one class simply never exhibits — the common
  // case in signature space ("this workload never calls that function").
  Dataset data;
  util::Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    data.push_back({vsm::SparseVector::from_entries(
                        {{7, 1.0 + rng.normal(0.0, 0.1)}}),
                    +1});
    data.push_back({vsm::SparseVector::from_entries(
                        {{3, 1.0 + rng.normal(0.0, 0.1)}}),
                    -1});
  }
  const DecisionTree tree = train_decision_tree(data);
  EXPECT_DOUBLE_EQ(train_accuracy(tree, data), 1.0);
}

}  // namespace
}  // namespace fmeter::ml
