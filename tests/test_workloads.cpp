#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "simkern/trace_hook.hpp"
#include "workloads/lmbench.hpp"
#include "workloads/netperf.hpp"

namespace fmeter::workloads {
namespace {

simkern::KernelConfig two_cpu_config() {
  simkern::KernelConfig config;
  config.num_cpus = 2;
  return config;
}

class CountingHook final : public simkern::TraceHook {
 public:
  void on_function_entry(simkern::CpuContext&, simkern::FunctionId fn,
                         simkern::FunctionId) noexcept override {
    ++counts[fn];
  }
  const char* name() const noexcept override { return "counting"; }
  std::map<simkern::FunctionId, std::uint64_t> counts;
};

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : kernel_(two_cpu_config()), ops_(kernel_) {
    kernel_.install_tracer(&hook_);
  }

  std::map<simkern::FunctionId, std::uint64_t> run(WorkloadKind kind,
                                                   int units = 5) {
    hook_.counts.clear();
    auto workload = make_workload(kind, ops_);
    workload->warmup(kernel_.cpu(0));
    for (int u = 0; u < units; ++u) workload->run_unit(kernel_.cpu(0));
    return hook_.counts;
  }

  simkern::Kernel kernel_;
  simkern::KernelOps ops_;
  CountingHook hook_;
};

TEST_F(WorkloadTest, EveryWorkloadProducesActivity) {
  for (const auto kind :
       {WorkloadKind::kKcompile, WorkloadKind::kScp, WorkloadKind::kDbench,
        WorkloadKind::kApachebench, WorkloadKind::kNetperf151,
        WorkloadKind::kNetperf143, WorkloadKind::kNetperf151NoLro,
        WorkloadKind::kBootup}) {
    const auto counts = run(kind, 2);
    EXPECT_GT(counts.size(), 10u) << workload_kind_name(kind);
  }
}

TEST_F(WorkloadTest, FactoryNamesConsistent) {
  EXPECT_STREQ(workload_kind_name(WorkloadKind::kKcompile), "kcompile");
  auto workload = make_workload(WorkloadKind::kScp, ops_);
  EXPECT_STREQ(workload->name(), "scp");
  auto netperf = make_workload(WorkloadKind::kNetperf143, ops_);
  EXPECT_STREQ(netperf->name(), "myri10ge-1.4.3");
}

TEST_F(WorkloadTest, KcompileIsUserTimeDominated) {
  auto kcompile = make_workload(WorkloadKind::kKcompile, ops_);
  auto dbench = make_workload(WorkloadKind::kDbench, ops_);
  EXPECT_GT(kcompile->user_work_per_unit(), 10 * dbench->user_work_per_unit());
}

TEST_F(WorkloadTest, ScpTouchesCryptoAndTcp) {
  const auto counts = run(WorkloadKind::kScp);
  EXPECT_TRUE(counts.contains(kernel_.id_of("sha1_transform")));
  EXPECT_TRUE(counts.contains(kernel_.id_of("tcp_sendmsg")));
}

TEST_F(WorkloadTest, DbenchTouchesJournalNotCrypto) {
  const auto counts = run(WorkloadKind::kDbench);
  EXPECT_TRUE(counts.contains(kernel_.id_of("journal_start")));
  EXPECT_FALSE(counts.contains(kernel_.id_of("sha1_transform")));
}

TEST_F(WorkloadTest, KcompileTouchesExecPath) {
  const auto counts = run(WorkloadKind::kKcompile);
  EXPECT_TRUE(counts.contains(kernel_.id_of("load_elf_binary")));
}

TEST_F(WorkloadTest, ApachebenchAcceptsAndServes) {
  const auto counts = run(WorkloadKind::kApachebench);
  EXPECT_TRUE(counts.contains(kernel_.id_of("inet_csk_accept")));
  EXPECT_TRUE(counts.contains(kernel_.id_of("tcp_sendmsg")));
}

TEST_F(WorkloadTest, WorkloadsHaveDistinctProfiles) {
  const auto scp = run(WorkloadKind::kScp, 10);
  const auto kcompile = run(WorkloadKind::kKcompile, 10);
  // Symmetric difference of supports must be substantial.
  std::size_t only_one = 0;
  for (const auto& [fn, count] : scp) only_one += !kcompile.contains(fn);
  for (const auto& [fn, count] : kcompile) only_one += !scp.contains(fn);
  EXPECT_GT(only_one, 30u);
}

TEST_F(WorkloadTest, DeterministicAcrossIdenticalSystems) {
  simkern::Kernel kernel_b(two_cpu_config());
  simkern::KernelOps ops_b(kernel_b);
  CountingHook hook_b;
  kernel_b.install_tracer(&hook_b);
  auto wa = make_workload(WorkloadKind::kDbench, ops_);
  auto wb = make_workload(WorkloadKind::kDbench, ops_b);
  hook_.counts.clear();
  for (int u = 0; u < 5; ++u) {
    wa->run_unit(kernel_.cpu(0));
    wb->run_unit(kernel_b.cpu(0));
  }
  EXPECT_EQ(hook_.counts, hook_b.counts);
}

// --- myri10ge module behavior (Table 5 setup) --------------------------------

TEST_F(WorkloadTest, NetperfLoadsDriverModule) {
  NetperfWorkload workload(ops_, Myri10geVariant::kV151);
  EXPECT_NE(kernel_.find_module("myri10ge"), nullptr);
  EXPECT_EQ(workload.module().version(), "1.5.1");
}

TEST_F(WorkloadTest, DriverReloadReplacesVariant) {
  NetperfWorkload v151(ops_, Myri10geVariant::kV151);
  NetperfWorkload v143(ops_, Myri10geVariant::kV143);
  EXPECT_EQ(kernel_.module_count(), 1u);
  EXPECT_EQ(kernel_.find_module("myri10ge")->version(), "1.4.3");
}

TEST(Myri10geBlueprint, VersionFunctionDeltasMatchPaper) {
  const auto v143 = myri10ge_blueprint(Myri10geVariant::kV143);
  const auto v151 = myri10ge_blueprint(Myri10geVariant::kV151);
  auto has = [](const simkern::ModuleBlueprint& bp, const char* name) {
    for (const auto& fn : bp.functions) {
      if (fn.name == name) return true;
    }
    return false;
  };
  // Removed between 1.4.3 and 1.5.1 (paper §4.2.1):
  EXPECT_TRUE(has(v143, "myri10ge_get_frag_header"));
  EXPECT_FALSE(has(v151, "myri10ge_get_frag_header"));
  // Added in 1.5.1 and exercised by the workload:
  EXPECT_TRUE(has(v151, "myri10ge_select_queue"));
  EXPECT_FALSE(has(v143, "myri10ge_select_queue"));
}

TEST(Myri10geBlueprint, LroVariantSharesCodeWithDefault) {
  const auto a = myri10ge_blueprint(Myri10geVariant::kV151);
  const auto b = myri10ge_blueprint(Myri10geVariant::kV151NoLro);
  // Same driver binary, different load-time parameter: identical blueprint.
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(a.functions[i].text_bytes, b.functions[i].text_bytes);
  }
}

TEST_F(WorkloadTest, ModuleFunctionsNeverAppearInSignatures) {
  // No module-local symbol resolves to a core-kernel term id: the counted
  // set is closed over the symbol table by construction. Run the workload
  // and check every counted id is a valid core-kernel function.
  const auto counts = run(WorkloadKind::kNetperf143, 10);
  for (const auto& [fn, count] : counts) {
    EXPECT_LT(fn, kernel_.symbols().size());
  }
}

TEST_F(WorkloadTest, LroVariantsDifferInTcpPathIntensity) {
  const auto with_lro = run(WorkloadKind::kNetperf151, 20);
  const auto no_lro = run(WorkloadKind::kNetperf151NoLro, 20);
  const auto tcp_rcv = kernel_.id_of("tcp_v4_rcv");
  const auto lro_fn = kernel_.id_of("lro_receive_skb");
  // LRO aggregation: ~8x fewer per-segment TCP entries per byte.
  ASSERT_TRUE(no_lro.contains(tcp_rcv));
  ASSERT_TRUE(with_lro.contains(tcp_rcv));
  EXPECT_GT(no_lro.at(tcp_rcv), 3 * with_lro.at(tcp_rcv));
  // And the LRO helpers only fire when LRO is on.
  EXPECT_TRUE(with_lro.contains(lro_fn));
  EXPECT_FALSE(no_lro.contains(lro_fn));
}

TEST_F(WorkloadTest, DriverVersionsDifferInAllocationPath) {
  const auto v143 = run(WorkloadKind::kNetperf143, 20);
  const auto v151 = run(WorkloadKind::kNetperf151, 20);
  const auto alloc_skb = kernel_.id_of("__alloc_skb");
  // 1.4.3 copybreaks into fresh skbs per frame; 1.5.1 uses page frags.
  const auto v143_allocs = v143.contains(alloc_skb) ? v143.at(alloc_skb) : 0;
  const auto v151_allocs = v151.contains(alloc_skb) ? v151.at(alloc_skb) : 0;
  EXPECT_GT(v143_allocs, 2 * v151_allocs);
}

TEST(Lmbench, CatalogHas23PaperRows) {
  const auto catalog = lmbench_catalog();
  EXPECT_EQ(catalog.size(), 23u);
  std::set<std::string> names;
  for (const auto& op : catalog) names.insert(op.name);
  EXPECT_EQ(names.size(), 23u);
  EXPECT_TRUE(names.contains("Simple syscall"));
  EXPECT_TRUE(names.contains("Select on 100 tcp fd's"));
  EXPECT_TRUE(names.contains("Process fork+/bin/sh -c"));
}

TEST(Lmbench, EveryOpRuns) {
  simkern::Kernel kernel(two_cpu_config());
  simkern::KernelOps ops(kernel);
  CountingHook hook;
  kernel.install_tracer(&hook);
  for (const auto& op : lmbench_catalog()) {
    hook.counts.clear();
    op.run(ops, kernel.cpu(0));
    EXPECT_FALSE(hook.counts.empty()) << op.name;
  }
}

TEST(Bootup, SweepsDeepIntoSymbolTable) {
  simkern::Kernel kernel(two_cpu_config());
  simkern::KernelOps ops(kernel);
  CountingHook hook;
  kernel.install_tracer(&hook);
  auto workload = make_workload(WorkloadKind::kBootup, ops);
  for (int u = 0; u < 8; ++u) workload->run_unit(kernel.cpu(0));
  // Boot touches a large share of the whole function population (Figure 1).
  EXPECT_GT(hook.counts.size(), kernel.symbols().size() / 3);
}

}  // namespace
}  // namespace fmeter::workloads
