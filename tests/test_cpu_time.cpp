// Unit test for the consolidated per-process CPU clock
// (util/cpu_time.hpp) that the hardened tracer-overhead tests and
// bench_common's time_op_cpu_us both measure with. Pins down the two
// properties those users rely on: the clock never goes backwards, and it
// charges CPU *work*, not wall time — a sleeping process accrues almost
// none of it while a busy loop accrues it at roughly wall speed.
#include <gtest/gtest.h>

#include <ctime>

#include "cpu_time.hpp"
#include "util/cpu_time.hpp"

namespace fmeter::util {
namespace {

/// Burns CPU for roughly `seconds` of process time; returns a value the
/// optimizer must keep so the loop cannot be elided.
double burn_cpu_for(double seconds) {
  volatile double sink = 1.0;
  const double start = cpu_seconds();
  while (cpu_seconds() - start < seconds) {
    for (int i = 0; i < 1000; ++i) sink = sink * 1.0000001 + 1e-9;
  }
  return sink;
}

TEST(CpuTime, MonotonicNonDecreasing) {
  double last = cpu_seconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 10000; ++i) {
    const double now = cpu_seconds();
    ASSERT_GE(now, last) << "iteration " << i;
    last = now;
  }
}

TEST(CpuTime, BusyWorkAdvancesTheClock) {
  const double start = cpu_seconds();
  burn_cpu_for(0.02);
  EXPECT_GE(cpu_seconds() - start, 0.02);
}

TEST(CpuTime, SleepBarelyAdvancesTheClock) {
  // Per-process, not wall-clock: 80ms of nanosleep must cost well under
  // half of that in CPU time (in practice microseconds; the generous bound
  // keeps the assertion robust on noisy shared machines).
  const double start = cpu_seconds();
  timespec request{};
  request.tv_sec = 0;
  request.tv_nsec = 80 * 1000 * 1000;
  nanosleep(&request, nullptr);
  EXPECT_LT(cpu_seconds() - start, 0.040);
}

TEST(CpuTime, MicrosAgreesWithSeconds) {
  const double s0 = cpu_seconds();
  const double us = cpu_micros();
  const double s1 = cpu_seconds();
  EXPECT_GE(us, s0 * 1e6);
  EXPECT_LE(us, s1 * 1e6);
}

TEST(CpuTime, TestingAliasIsTheSameClock) {
  // tests/cpu_time.hpp must forward to this implementation, not keep a
  // second clock that can drift: the alias must interleave monotonically
  // with the util spelling.
  const double a = testing::cpu_seconds();
  const double b = cpu_seconds();
  const double c = testing::cpu_seconds();
  EXPECT_LE(a, b);
  EXPECT_LE(b, c);
}

}  // namespace
}  // namespace fmeter::util
