#include "vsm/feature_select.hpp"

#include <gtest/gtest.h>

namespace fmeter::vsm {
namespace {

SparseVector vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::from_entries(std::move(entries));
}

std::vector<SparseVector> sample_vectors() {
  // term 0: in all 4 (df 4), constant value (variance 0)
  // term 1: in 2, large varying values
  // term 2: in 3, small values
  // term 9: in 1, huge value
  return {
      vec({{0, 1.0}, {1, 8.0}, {2, 0.1}}),
      vec({{0, 1.0}, {2, 0.2}}),
      vec({{0, 1.0}, {1, 2.0}, {2, 0.1}}),
      vec({{0, 1.0}, {9, 50.0}}),
  };
}

TEST(FeatureSelect, DocumentFrequencyOrder) {
  const auto vectors = sample_vectors();
  const auto top2 =
      select_features(vectors, 2, FeatureScore::kDocumentFrequency);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 0u);  // df 4
  EXPECT_EQ(top2[1], 2u);  // df 3
}

TEST(FeatureSelect, VarianceIgnoresConstantTerms) {
  const auto vectors = sample_vectors();
  const auto top2 = select_features(vectors, 2, FeatureScore::kVariance);
  // term 9 (one 50, three 0) and term 1 (8, 0, 2, 0) vary most; term 0 not
  // at all.
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 9u);
}

TEST(FeatureSelect, MeanWeightFavorsHeavyTerms) {
  const auto vectors = sample_vectors();
  const auto top1 = select_features(vectors, 1, FeatureScore::kMeanWeight);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], 9u);  // mean 12.5 beats everything
}

TEST(FeatureSelect, KClampsToVocabulary) {
  const auto vectors = sample_vectors();
  const auto all =
      select_features(vectors, 100, FeatureScore::kDocumentFrequency);
  EXPECT_EQ(all.size(), 4u);  // only 4 distinct terms exist
}

TEST(FeatureSelect, ResultSortedAscending) {
  const auto vectors = sample_vectors();
  const auto kept = select_features(vectors, 3, FeatureScore::kVariance);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_LT(kept[i - 1], kept[i]);
  }
}

TEST(FeatureSelect, InvalidInputsThrow) {
  EXPECT_THROW(select_features({}, 2, FeatureScore::kVariance),
               std::invalid_argument);
  const auto vectors = sample_vectors();
  EXPECT_THROW(select_features(vectors, 0, FeatureScore::kVariance),
               std::invalid_argument);
}

TEST(FeatureSelect, ProjectKeepsOnlySelected) {
  const auto v = vec({{0, 1.0}, {3, 2.0}, {7, 3.0}});
  const std::vector<SparseVector::Index> keep = {3, 8};
  const auto projected = project(v, keep);
  EXPECT_EQ(projected.nnz(), 1u);
  EXPECT_DOUBLE_EQ(projected.at(3), 2.0);
  EXPECT_EQ(projected.at(0), 0.0);
  EXPECT_EQ(projected.at(7), 0.0);
}

TEST(FeatureSelect, ProjectAllPreservesOrder) {
  const auto vectors = sample_vectors();
  const std::vector<SparseVector::Index> keep = {0, 1};
  const auto projected = project_all(vectors, keep);
  ASSERT_EQ(projected.size(), vectors.size());
  EXPECT_DOUBLE_EQ(projected[0].at(1), 8.0);
  EXPECT_EQ(projected[3].at(9), 0.0);
}

TEST(FeatureSelect, ScoreNames) {
  EXPECT_STREQ(feature_score_name(FeatureScore::kDocumentFrequency),
               "document-frequency");
  EXPECT_STREQ(feature_score_name(FeatureScore::kVariance), "variance");
  EXPECT_STREQ(feature_score_name(FeatureScore::kMeanWeight), "mean-weight");
}

}  // namespace
}  // namespace fmeter::vsm
