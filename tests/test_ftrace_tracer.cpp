#include "trace/ftrace_tracer.hpp"

#include <gtest/gtest.h>

#include "simkern/kernel.hpp"

namespace fmeter::trace {
namespace {

simkern::KernelConfig small_config() {
  simkern::KernelConfig config;
  config.symbols.total_functions = 900;
  config.num_cpus = 2;
  return config;
}

class FtraceTracerTest : public ::testing::Test {
 protected:
  FtraceTracerTest()
      : kernel_(small_config()),
        tracer_(kernel_.symbols(), kernel_.num_cpus()) {
    kernel_.install_tracer(&tracer_);
  }

  simkern::Kernel kernel_;
  FtraceTracer tracer_;
};

TEST_F(FtraceTracerTest, RecordsEventsWithPayload) {
  const auto fn = kernel_.id_of("vfs_read");
  const auto parent = kernel_.id_of("sys_read");
  kernel_.invoke(kernel_.cpu(0), fn, parent);
  auto events = tracer_.buffer(0).drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fn, fn);
  EXPECT_EQ(events[0].parent, parent);
  EXPECT_EQ(events[0].cpu, 0u);
  EXPECT_GT(events[0].timestamp_ns, 0u);
}

TEST_F(FtraceTracerTest, TimestampsMonotonicPerCpu) {
  for (int i = 0; i < 100; ++i) kernel_.invoke(kernel_.cpu(0), 1);
  const auto events = tracer_.buffer(0).drain();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
  }
}

TEST_F(FtraceTracerTest, CountsFromBuffersMatchInvocations) {
  const auto a = kernel_.id_of("kmalloc");
  const auto b = kernel_.id_of("kfree");
  for (int i = 0; i < 10; ++i) kernel_.invoke(kernel_.cpu(0), a);
  for (int i = 0; i < 4; ++i) kernel_.invoke(kernel_.cpu(1), b);
  const CounterSnapshot snap = tracer_.counts_from_buffers();
  EXPECT_EQ(snap.counts[a], 10u);
  EXPECT_EQ(snap.counts[b], 4u);
  // Post-processing Ftrace logs gives the same data Fmeter keeps natively —
  // at the cost of an O(events) pass (and only if the buffer didn't overrun).
}

TEST_F(FtraceTracerTest, EventsLostWhenBufferTooSmall) {
  FtraceTracerConfig config;
  config.buffer_events_per_cpu = 16;
  FtraceTracer small(kernel_.symbols(), kernel_.num_cpus(), config);
  kernel_.install_tracer(&small);
  for (int i = 0; i < 100; ++i) kernel_.invoke(kernel_.cpu(0), 1);
  EXPECT_EQ(small.entries_written(), 100u);
  EXPECT_GT(small.overruns(), 0u);
  // Fmeter never drops counts; the Ftrace ring does once full. This is the
  // "no events fly under the radar" contrast of paper §1.
  const auto snap = small.counts_from_buffers();
  EXPECT_LT(snap.counts[1], 100u);
}

TEST_F(FtraceTracerTest, TracePipeFormatsSymbols) {
  kernel_.invoke(kernel_.cpu(0), kernel_.id_of("vfs_read"),
                 kernel_.id_of("sys_read"));
  const std::string pipe = tracer_.consume_trace_pipe();
  EXPECT_NE(pipe.find("vfs_read"), std::string::npos);
  EXPECT_NE(pipe.find("<- sys_read"), std::string::npos);
  // Draining consumes.
  EXPECT_TRUE(tracer_.consume_trace_pipe().empty());
}

TEST_F(FtraceTracerTest, DebugfsFiles) {
  DebugFs fs;
  tracer_.register_debugfs(fs);
  kernel_.invoke(kernel_.cpu(0), 5);
  const std::string stats = fs.read("tracing/buffer_stats");
  EXPECT_NE(stats.find("entries_written 1"), std::string::npos);
  const std::string pipe = fs.read("tracing/trace_pipe");
  EXPECT_FALSE(pipe.empty());
}

TEST_F(FtraceTracerTest, PerCpuBuffersIndependent) {
  kernel_.invoke(kernel_.cpu(0), 1);
  kernel_.invoke(kernel_.cpu(1), 2);
  EXPECT_EQ(tracer_.buffer(0).size(), 1u);
  EXPECT_EQ(tracer_.buffer(1).size(), 1u);
}

TEST_F(FtraceTracerTest, NameIsFtrace) { EXPECT_STREQ(tracer_.name(), "ftrace"); }

TEST(FtraceTracerConfig, ZeroCpusThrows) {
  simkern::Kernel kernel(small_config());
  EXPECT_THROW(FtraceTracer(kernel.symbols(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace fmeter::trace
