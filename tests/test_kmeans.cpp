#include "ml/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

/// Two well-separated Gaussian blobs in a 10-dimensional space.
std::pair<std::vector<vsm::SparseVector>, std::vector<int>> two_blobs(
    std::size_t per_blob, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<vsm::SparseVector> points;
  std::vector<int> labels;
  for (int blob = 0; blob < 2; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      std::vector<vsm::SparseVector::Entry> entries;
      for (int d = 0; d < 10; ++d) {
        const double center = blob == 0 ? 0.0 : 8.0;
        entries.emplace_back(d, center + rng.normal(0.0, 0.5));
      }
      points.push_back(vsm::SparseVector::from_entries(std::move(entries)));
      labels.push_back(blob);
    }
  }
  return {points, labels};
}

TEST(KMeans, SeparatesTwoBlobsPerfectly) {
  const auto [points, labels] = two_blobs(30, 1);
  KMeansConfig config;
  config.k = 2;
  const auto result = KMeans(config).fit(points);
  EXPECT_DOUBLE_EQ(cluster_purity(result.assignments, labels), 1.0);
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, AssignmentsWithinRange) {
  const auto [points, labels] = two_blobs(10, 2);
  KMeansConfig config;
  config.k = 3;
  const auto result = KMeans(config).fit(points);
  ASSERT_EQ(result.assignments.size(), points.size());
  for (const auto a : result.assignments) EXPECT_LT(a, 3u);
}

TEST(KMeans, KEqualsNPutsEachPointAlone) {
  const auto [points, labels] = two_blobs(5, 3);
  KMeansConfig config;
  config.k = points.size();
  const auto result = KMeans(config).fit(points);
  std::set<std::size_t> used(result.assignments.begin(),
                             result.assignments.end());
  EXPECT_EQ(used.size(), points.size());
  // Purity degenerates to 1.0 (paper §4.2.2's caveat about raising K).
  EXPECT_DOUBLE_EQ(cluster_purity(result.assignments, labels), 1.0);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeans, DeterministicForSameSeed) {
  const auto [points, labels] = two_blobs(20, 4);
  KMeansConfig config;
  config.k = 2;
  config.seed = 99;
  const auto a = KMeans(config).fit(points);
  const auto b = KMeans(config).fit(points);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, CentroidsAreClusterMeans) {
  const auto [points, labels] = two_blobs(20, 5);
  KMeansConfig config;
  config.k = 2;
  const auto result = KMeans(config).fit(points);
  const std::size_t dim = result.centroids[0].size();
  const auto recomputed =
      compute_centroids(points, result.assignments, 2, dim);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_NEAR(result.centroids[c][d], recomputed[c][d], 1e-9);
    }
  }
}

TEST(KMeans, RandomInitAlsoWorksOnEasyData) {
  const auto [points, labels] = two_blobs(25, 6);
  KMeansConfig config;
  config.k = 2;
  config.plus_plus_init = false;
  const auto result = KMeans(config).fit(points);
  EXPECT_GE(cluster_purity(result.assignments, labels), 0.95);
}

TEST(KMeans, ZeroKThrows) {
  const auto [points, labels] = two_blobs(5, 7);
  KMeansConfig config;
  config.k = 0;
  EXPECT_THROW(KMeans(config).fit(points), std::invalid_argument);
}

TEST(KMeans, MorePointsThanClustersRequired) {
  const auto [points, labels] = two_blobs(1, 8);  // 2 points
  KMeansConfig config;
  config.k = 5;
  EXPECT_THROW(KMeans(config).fit(points), std::invalid_argument);
}

TEST(KMeans, AllClustersPopulated) {
  const auto [points, labels] = two_blobs(30, 9);
  KMeansConfig config;
  config.k = 4;
  const auto result = KMeans(config).fit(points);
  std::set<std::size_t> used(result.assignments.begin(),
                             result.assignments.end());
  EXPECT_EQ(used.size(), 4u);  // empty-cluster reseeding keeps K alive
}

TEST(DistanceSqToCentroid, MatchesExplicitComputation) {
  const auto p = vsm::SparseVector::from_entries({{0, 1.0}, {2, 3.0}});
  const std::vector<double> centroid = {2.0, 1.0, 1.0};
  // (1-2)^2 + (0-1)^2 + (3-1)^2 = 1 + 1 + 4
  EXPECT_NEAR(distance_sq_to_centroid(p, centroid), 6.0, 1e-12);
}

TEST(DistanceSqToCentroid, PointBeyondCentroidDimension) {
  const auto p = vsm::SparseVector::from_entries({{5, 2.0}});
  const std::vector<double> centroid = {1.0};
  EXPECT_NEAR(distance_sq_to_centroid(p, centroid), 1.0 + 4.0, 1e-12);
}

// Inertia is non-increasing in K on the same data (parameterized sweep).
class KMeansInertiaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KMeansInertiaSweep, InertiaShrinksWithMoreClusters) {
  const auto [points, labels] = two_blobs(25, 10);
  KMeansConfig small;
  small.k = GetParam();
  KMeansConfig large;
  large.k = GetParam() + 4;
  const double inertia_small = KMeans(small).fit(points).inertia;
  const double inertia_large = KMeans(large).fit(points).inertia;
  EXPECT_LE(inertia_large, inertia_small * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansInertiaSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace fmeter::ml
