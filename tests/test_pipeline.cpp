#include "fmeter/pipeline.hpp"

#include <gtest/gtest.h>

namespace fmeter::core {
namespace {

vsm::Corpus labeled_corpus() {
  vsm::Corpus corpus;
  corpus.add(vsm::CountDocument::from_counts({{0, 5}, {1, 1}}, "scp"));
  corpus.add(vsm::CountDocument::from_counts({{1, 4}, {2, 2}}, "kcompile"));
  corpus.add(vsm::CountDocument::from_counts({{0, 2}, {2, 7}}, "dbench"));
  corpus.add(vsm::CountDocument::from_counts({{0, 1}, {1, 1}}, "scp"));
  return corpus;
}

TEST(Pipeline, SignaturesAlignedWithCorpus) {
  const auto corpus = labeled_corpus();
  const auto vectors = signatures_from(corpus);
  EXPECT_EQ(vectors.size(), corpus.size());
}

TEST(Pipeline, ModelCopiedOut) {
  const auto corpus = labeled_corpus();
  vsm::TfIdfModel model;
  signatures_from(corpus, {}, &model);
  EXPECT_TRUE(model.fitted());
  EXPECT_EQ(model.num_documents(), corpus.size());
}

TEST(Pipeline, OptionsPropagate) {
  const auto corpus = labeled_corpus();
  vsm::TfIdfOptions options;
  options.l2_normalize = false;
  options.weighting = vsm::Weighting::kRawCount;
  const auto vectors = signatures_from(corpus, options);
  EXPECT_DOUBLE_EQ(vectors[0].at(0), 5.0);
}

TEST(Pipeline, BinaryDatasetMapsLabels) {
  const auto corpus = labeled_corpus();
  const auto vectors = signatures_from(corpus);
  const std::vector<std::string> pos = {"scp"};
  const std::vector<std::string> neg = {"kcompile", "dbench"};
  const auto data = binary_dataset(corpus, vectors, pos, neg);
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0].label, +1);
  EXPECT_EQ(data[1].label, -1);
  EXPECT_EQ(data[2].label, -1);
  EXPECT_EQ(data[3].label, +1);
}

TEST(Pipeline, BinaryDatasetDropsOtherLabels) {
  const auto corpus = labeled_corpus();
  const auto vectors = signatures_from(corpus);
  const std::vector<std::string> pos = {"scp"};
  const std::vector<std::string> neg = {"kcompile"};
  const auto data = binary_dataset(corpus, vectors, pos, neg);
  EXPECT_EQ(data.size(), 3u);  // dbench dropped
}

TEST(Pipeline, BinaryDatasetMisalignmentThrows) {
  const auto corpus = labeled_corpus();
  std::vector<vsm::SparseVector> wrong(2);
  const std::vector<std::string> pos = {"scp"};
  const std::vector<std::string> neg = {"kcompile"};
  EXPECT_THROW(binary_dataset(corpus, wrong, pos, neg), std::invalid_argument);
}

TEST(Pipeline, MulticlassDatasetIndicesMatchLabelOrder) {
  const auto corpus = labeled_corpus();
  const auto vectors = signatures_from(corpus);
  const std::vector<std::string> labels = {"kcompile", "scp"};
  const auto data = multiclass_dataset(corpus, vectors, labels);
  ASSERT_EQ(data.size(), 3u);  // dbench dropped
  EXPECT_EQ(data[0].label, 1);  // scp
  EXPECT_EQ(data[1].label, 0);  // kcompile
  EXPECT_EQ(data[2].label, 1);  // scp
}

}  // namespace
}  // namespace fmeter::core
