#include "trace/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace fmeter::trace {
namespace {

TraceEvent event(std::uint32_t fn) {
  TraceEvent e;
  e.timestamp_ns = fn * 10;
  e.fn = fn;
  e.parent = fn + 1;
  return e;
}

TEST(TraceRingBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRingBuffer(100).capacity(), 128u);
  EXPECT_EQ(TraceRingBuffer(64).capacity(), 64u);
  EXPECT_EQ(TraceRingBuffer(2).capacity(), 2u);
}

TEST(TraceRingBuffer, TinyCapacityThrows) {
  EXPECT_THROW(TraceRingBuffer(0), std::invalid_argument);
  EXPECT_THROW(TraceRingBuffer(1), std::invalid_argument);
}

TEST(TraceRingBuffer, FifoOrder) {
  TraceRingBuffer buffer(8);
  for (std::uint32_t i = 0; i < 5; ++i) buffer.push(event(i));
  const auto drained = buffer.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(drained[i].fn, i);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceRingBuffer, OverwritesOldestWhenFull) {
  TraceRingBuffer buffer(4);
  for (std::uint32_t i = 0; i < 6; ++i) buffer.push(event(i));
  EXPECT_EQ(buffer.overruns(), 2u);
  const auto drained = buffer.drain();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained.front().fn, 2u);  // 0 and 1 overwritten
  EXPECT_EQ(drained.back().fn, 5u);
}

TEST(TraceRingBuffer, EntriesWrittenCountsEverything) {
  TraceRingBuffer buffer(4);
  for (std::uint32_t i = 0; i < 10; ++i) buffer.push(event(i));
  EXPECT_EQ(buffer.entries_written(), 10u);
}

TEST(TraceRingBuffer, DrainRespectsMaxEvents) {
  TraceRingBuffer buffer(16);
  for (std::uint32_t i = 0; i < 10; ++i) buffer.push(event(i));
  const auto first = buffer.drain(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].fn, 0u);
  EXPECT_EQ(buffer.size(), 7u);
  const auto rest = buffer.drain();
  EXPECT_EQ(rest.size(), 7u);
  EXPECT_EQ(rest.front().fn, 3u);
}

TEST(TraceRingBuffer, DrainEmptyIsEmpty) {
  TraceRingBuffer buffer(4);
  EXPECT_TRUE(buffer.drain().empty());
}

TEST(TraceRingBuffer, WrapAroundManyTimesStaysConsistent) {
  TraceRingBuffer buffer(8);
  for (std::uint32_t i = 0; i < 1000; ++i) buffer.push(event(i));
  EXPECT_EQ(buffer.size(), 8u);
  const auto drained = buffer.drain();
  ASSERT_EQ(drained.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(drained[i].fn, 992u + i);
  }
  EXPECT_EQ(buffer.entries_written(), 1000u);
  EXPECT_EQ(buffer.overruns(), 992u);
}

TEST(TraceRingBuffer, EventPayloadPreserved) {
  TraceRingBuffer buffer(4);
  TraceEvent e;
  e.timestamp_ns = 12345;
  e.fn = 7;
  e.parent = 8;
  e.cpu = 3;
  buffer.push(e);
  const auto drained = buffer.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].timestamp_ns, 12345u);
  EXPECT_EQ(drained[0].fn, 7u);
  EXPECT_EQ(drained[0].parent, 8u);
  EXPECT_EQ(drained[0].cpu, 3u);
}

// Writer/reader race: the lock must keep the invariant
// drained + buffered + overrun == written.
TEST(TraceRingBuffer, ConcurrentWriterAndReader) {
  TraceRingBuffer buffer(64);
  constexpr std::uint32_t kEvents = 100000;
  std::atomic<bool> done{false};
  std::uint64_t drained_count = 0;

  std::thread writer([&] {
    for (std::uint32_t i = 0; i < kEvents; ++i) buffer.push(event(i));
    done.store(true);
  });
  std::thread reader([&] {
    while (!done.load()) drained_count += buffer.drain(16).size();
    drained_count += buffer.drain().size();
  });
  writer.join();
  reader.join();

  EXPECT_EQ(buffer.entries_written(), kEvents);
  EXPECT_EQ(drained_count + buffer.overruns(), kEvents);
}

}  // namespace
}  // namespace fmeter::trace
