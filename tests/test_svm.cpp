#include "ml/svm.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fmeter::ml {
namespace {

vsm::SparseVector vec2(double x, double y) {
  return vsm::SparseVector::from_entries({{0, x}, {1, y}});
}

Dataset linearly_separable(std::size_t per_class, std::uint64_t seed,
                           double noise = 0.0) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < per_class; ++i) {
    const int flip_pos = noise > 0.0 && rng.bernoulli(noise) ? -1 : 1;
    const int flip_neg = noise > 0.0 && rng.bernoulli(noise) ? -1 : 1;
    data.push_back(
        {vec2(1.0 + rng.normal(0.0, 0.2), 1.0 + rng.normal(0.0, 0.2)),
         +1 * flip_pos});
    data.push_back(
        {vec2(-1.0 + rng.normal(0.0, 0.2), -1.0 + rng.normal(0.0, 0.2)),
         -1 * flip_neg});
  }
  return data;
}

double train_accuracy(const SvmModel& model, const Dataset& data) {
  std::size_t correct = 0;
  for (const auto& example : data) {
    correct += model.predict(example.x) == example.label;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(Svm, LinearKernelSeparatesLinearData) {
  const Dataset data = linearly_separable(40, 1);
  SvmConfig config;
  config.kernel.type = SvmKernelType::kLinear;
  config.c = 10.0;
  const SvmModel model = train_svm(data, config);
  EXPECT_DOUBLE_EQ(train_accuracy(model, data), 1.0);
}

TEST(Svm, PolynomialKernelSeparatesLinearData) {
  const Dataset data = linearly_separable(40, 2);
  SvmConfig config;  // default polynomial, like SVMlight -t 1
  config.c = 10.0;
  const SvmModel model = train_svm(data, config);
  EXPECT_DOUBLE_EQ(train_accuracy(model, data), 1.0);
}

// XOR is the classic non-linearly-separable pattern: the linear kernel must
// fail, the polynomial kernel must succeed.
TEST(Svm, XorNeedsNonLinearKernel) {
  util::Rng rng(3);
  Dataset data;
  for (int i = 0; i < 30; ++i) {
    auto jitter = [&rng] { return rng.normal(0.0, 0.1); };
    data.push_back({vec2(1.0 + jitter(), 1.0 + jitter()), +1});
    data.push_back({vec2(-1.0 + jitter(), -1.0 + jitter()), +1});
    data.push_back({vec2(1.0 + jitter(), -1.0 + jitter()), -1});
    data.push_back({vec2(-1.0 + jitter(), 1.0 + jitter()), -1});
  }
  SvmConfig linear;
  linear.kernel.type = SvmKernelType::kLinear;
  linear.c = 10.0;
  const double linear_accuracy = train_accuracy(train_svm(data, linear), data);
  EXPECT_LE(linear_accuracy, 0.8);  // a hyperplane can get at most ~3/4 of XOR

  SvmConfig poly;
  poly.kernel.type = SvmKernelType::kPolynomial;
  poly.kernel.degree = 2;
  poly.c = 10.0;
  const double poly_accuracy = train_accuracy(train_svm(data, poly), data);
  EXPECT_GE(poly_accuracy, 0.97);
}

TEST(Svm, RbfKernelHandlesXor) {
  util::Rng rng(4);
  Dataset data;
  for (int i = 0; i < 25; ++i) {
    auto jitter = [&rng] { return rng.normal(0.0, 0.1); };
    data.push_back({vec2(1.0 + jitter(), 1.0 + jitter()), +1});
    data.push_back({vec2(-1.0 + jitter(), -1.0 + jitter()), +1});
    data.push_back({vec2(1.0 + jitter(), -1.0 + jitter()), -1});
    data.push_back({vec2(-1.0 + jitter(), 1.0 + jitter()), -1});
  }
  SvmConfig config;
  config.kernel.type = SvmKernelType::kRbf;
  config.kernel.gamma = 1.0;
  config.c = 10.0;
  EXPECT_GE(train_accuracy(train_svm(data, config), data), 0.97);
}

TEST(Svm, DecisionValueSignMatchesPrediction) {
  const Dataset data = linearly_separable(20, 5);
  const SvmModel model = train_svm(data);
  for (const auto& example : data) {
    const double value = model.decision_value(example.x);
    EXPECT_EQ(model.predict(example.x), value >= 0.0 ? +1 : -1);
  }
}

TEST(Svm, SupportVectorsAreSubsetOfTraining) {
  const Dataset data = linearly_separable(30, 6);
  const SvmModel model = train_svm(data);
  EXPECT_GT(model.num_support_vectors(), 0u);
  EXPECT_LE(model.num_support_vectors(), data.size());
  // On clean, well-separated data most points are NOT support vectors.
  EXPECT_LT(model.num_support_vectors(), data.size() / 2);
}

TEST(Svm, NoisyDataStillMostlyCorrectWithSoftMargin) {
  const Dataset data = linearly_separable(50, 7, /*noise=*/0.05);
  SvmConfig config;
  config.kernel.type = SvmKernelType::kLinear;
  config.c = 1.0;
  const SvmModel model = train_svm(data, config);
  EXPECT_GE(train_accuracy(model, data), 0.9);
}

TEST(Svm, SingleClassThrows) {
  Dataset data;
  data.push_back({vec2(1, 1), +1});
  data.push_back({vec2(2, 2), +1});
  EXPECT_THROW(train_svm(data), std::invalid_argument);
}

TEST(Svm, NonBinaryLabelThrows) {
  Dataset data;
  data.push_back({vec2(1, 1), +1});
  data.push_back({vec2(2, 2), 0});
  EXPECT_THROW(train_svm(data), std::invalid_argument);
}

TEST(Svm, DeterministicForSameSeed) {
  const Dataset data = linearly_separable(25, 8);
  SvmConfig config;
  config.seed = 42;
  const SvmModel a = train_svm(data, config);
  const SvmModel b = train_svm(data, config);
  EXPECT_EQ(a.num_support_vectors(), b.num_support_vectors());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
  EXPECT_DOUBLE_EQ(a.decision_value(vec2(0.3, -0.2)),
                   b.decision_value(vec2(0.3, -0.2)));
}

TEST(SvmKernel, LinearIsDotProduct) {
  SvmKernel kernel;
  kernel.type = SvmKernelType::kLinear;
  EXPECT_DOUBLE_EQ(kernel(vec2(1, 2), vec2(3, 4)), 11.0);
}

TEST(SvmKernel, PolynomialMatchesFormula) {
  SvmKernel kernel;  // (1*a.b + 1)^3
  EXPECT_DOUBLE_EQ(kernel(vec2(1, 0), vec2(1, 0)), 8.0);  // (1+1)^3
  kernel.degree = 2;
  kernel.coef0 = 0.0;
  kernel.gamma = 2.0;
  EXPECT_DOUBLE_EQ(kernel(vec2(1, 1), vec2(1, 1)), 16.0);  // (2*2)^2
}

TEST(SvmKernel, RbfBounds) {
  SvmKernel kernel;
  kernel.type = SvmKernelType::kRbf;
  kernel.gamma = 0.5;
  EXPECT_NEAR(kernel(vec2(1, 2), vec2(1, 2)), 1.0, 1e-12);
  const double far = kernel(vec2(0, 0), vec2(10, 10));
  EXPECT_GT(far, 0.0);
  EXPECT_LT(far, 1e-6);
}

TEST(SvmModel, MismatchedArityThrows) {
  EXPECT_THROW(SvmModel(SvmKernel{}, {vec2(1, 1)}, {1.0, 2.0}, 0.0),
               std::invalid_argument);
}

// Parameterized sweep: increasing C on noisy data never hurts training
// accuracy much (harder margin fits the noise).
class SvmCSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweep, TrainingAccuracyReasonableAcrossC) {
  const Dataset data = linearly_separable(30, 9, /*noise=*/0.03);
  SvmConfig config;
  config.kernel.type = SvmKernelType::kLinear;
  config.c = GetParam();
  EXPECT_GE(train_accuracy(train_svm(data, config), data), 0.85);
}

INSTANTIATE_TEST_SUITE_P(Cs, SvmCSweep,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

}  // namespace
}  // namespace fmeter::ml
