#!/usr/bin/env python3
"""Diff a freshly emitted BENCH_*.json against a committed baseline.

Every bench binary writes a machine-readable ``{"bench": ..., "rows": [...]}``
trajectory file (see bench_common.hpp's emit_json). This script joins the
fresh rows against the committed baseline on their identity fields (every
field except the measured ones) and fails when ``us_per_query`` regressed by
more than the threshold on rows large enough to be stable — by default >20%
at >= 10k docs, the sizes where the measurement noise is far below the gate.

Caveats, by design:

* Absolute microseconds only compare meaningfully on the machine that
  produced the baseline. CI's smoke runs cap the corpus below the enforced
  sizes, so there the script validates schema and row identity and reports
  the small-row deltas without failing; the enforced gate matters for full
  runs on the baseline machine (and for refreshing the baseline alongside
  any intentional perf change).
* Rows present in the baseline but missing from the fresh file are warnings
  (smoke runs legitimately truncate the ladder); brand-new fresh rows are
  reported, not failed, so adding a policy to a bench does not break CI.

Usage:
  tools/bench_check.py FRESH BASELINE [--threshold 0.20] [--min-docs 10000]
  tools/bench_check.py BENCH_index_scaling.json /tmp/baseline.json

Exit status: 0 ok, 1 enforced regression, 2 usage/schema error.
"""

import argparse
import json
import sys

MEASURED_FIELDS = {
    "us_per_query", "queries_per_sec", "prune_rate", "postings_visited",
    "blocks_skipped", "seconds", "docs_per_sec", "cores",
    "file_mb", "mb_per_sec", "speedup", "forward_gathers",
    # query_engine_scaling: per-cell scheduler measurements...
    "speedup_vs_scalar", "dispatch_inline", "dispatch_pooled",
    "spans_reserved", "tasks_executed",
    # ...its per-chunk latency distribution (p99 is gated like the median;
    # p50/p95 are tracked but not enforced)...
    "us_p50", "us_p95", "us_p99",
    # ...and its threshold-seeding comparison row.
    "work_ratio", "seeded_docs_scored", "seeded_postings_visited",
    "independent_docs_scored", "independent_postings_visited",
    # durability_scaling: journaled-ingest cost relative to the no-journal
    # baseline of the same run (machine-relative, like speedup_vs_scalar).
    "overhead_vs_off",
    # robustness_scaling: checkpoint poll counts of the deadline-armed
    # sweep and the shed-load rejection count (both deterministic, but
    # measured, not identity).
    "checkpoint_polls", "rejected", "deadline_exceeded",
    # live_ingest_scaling: sustained ingest throughput while serving a
    # concurrent query load, and the paired same-run ratio of the served
    # query p99 against the idle-ingest p99 (machine-relative, like
    # speedup_vs_scalar, so it gates off the baseline machine).
    "sigs_per_sec", "p99_vs_idle", "refreezes", "queries_served",
}
# Lower-is-better metrics, in preference order; each file is gated on the
# first one its rows actually carry (query benches emit us_per_query, the
# build bench emits seconds).
METRIC_FIELDS = ("us_per_query", "seconds")


def pick_metric(rows):
    for field in METRIC_FIELDS:
        if any(field in row for row in rows):
            return field
    return None


def load_rows(path):
    # Exit 2 (usage/schema), matching the documented contract — a bare
    # SystemExit(str) would exit 1 and masquerade as a perf regression.
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_check: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(payload, dict) or "rows" not in payload:
        print(f"bench_check: {path} is not an emit_json file",
              file=sys.stderr)
        raise SystemExit(2)
    return payload.get("bench", "?"), payload["rows"]


def row_key(row):
    return tuple(sorted(
        (field, value) for field, value in row.items()
        if field not in MEASURED_FIELDS))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional us_per_query increase")
    parser.add_argument("--min-docs", type=float, default=10000,
                        help="enforce only on rows with docs >= this")
    parser.add_argument("--speedup-floor", type=float, default=None,
                        help="fail when a fresh row's speedup_vs_scalar falls "
                             "below this (a machine-relative ratio, so unlike "
                             "us_per_query it is enforceable off the baseline "
                             "machine); enforced at docs >= min-docs")
    parser.add_argument("--overhead-ceiling", type=float, default=None,
                        help="fail when a fresh row's overhead_vs_off exceeds "
                             "this fraction (paired same-run ratio against "
                             "the feature-off baseline of the same run, so "
                             "it is enforceable off the baseline machine); "
                             "applies to mode=async rows (durability: "
                             "journaled ingest) and mode=deadline rows "
                             "(robustness: armed checkpoints) at docs >= "
                             "min-docs — fsync overhead is storage-bound "
                             "and only tracked")
    parser.add_argument("--p99-ratio-ceiling", type=float, default=None,
                        help="fail when a fresh row's p99_vs_idle exceeds "
                             "this ratio (query p99 under concurrent ingest "
                             "vs the idle p99 of the same run — a paired "
                             "same-run ratio, enforceable off the baseline "
                             "machine); enforced at docs >= min-docs")
    parser.add_argument("--require-rows", action="store_true",
                        help="treat a baseline row missing from the fresh "
                             "file as a failure instead of a truncation "
                             "warning (full-ladder runs; smoke runs "
                             "legitimately truncate)")
    args = parser.parse_args()

    fresh_name, fresh_rows = load_rows(args.fresh)
    base_name, base_rows = load_rows(args.baseline)
    if fresh_name != base_name:
        print(f"bench_check: bench name mismatch: fresh '{fresh_name}' vs "
              f"baseline '{base_name}'", file=sys.stderr)
        return 2

    fresh_by_key = {row_key(row): row for row in fresh_rows}
    base_by_key = {row_key(row): row for row in base_rows}
    metric = pick_metric(base_rows)
    if metric is None:
        print(f"bench_check: {args.baseline} rows carry no known metric "
              f"field {METRIC_FIELDS}", file=sys.stderr)
        return 2

    failures = 0
    compared = 0
    missing_failures = 0
    for key, base in sorted(base_by_key.items()):
        fresh = fresh_by_key.get(key)
        ident = ", ".join(f"{f}={v}" for f, v in key)
        if fresh is None:
            # Never a bare KeyError: a row the baseline has but the fresh
            # file lacks is either a truncated smoke ladder (warn) or, under
            # --require-rows, a hard failure with the row spelled out.
            if args.require_rows:
                print(f"bench_check: missing baseline row ({ident})",
                      file=sys.stderr)
                missing_failures += 1
            else:
                print(f"  [missing] {ident} (fresh run truncated?)")
            continue
        if metric not in base or metric not in fresh:
            continue
        compared += 1
        enforced = base.get("docs", 0) >= args.min_docs
        # Tail latency regresses independently of the median (e.g. a new
        # allocation on a rare path), so us_p99 is gated with the same
        # threshold wherever both files carry it.
        gated = [metric] + (["us_p99"] if "us_p99" in base and
                            "us_p99" in fresh else [])
        for field in gated:
            base_us = base[field]
            fresh_us = fresh[field]
            delta = (fresh_us - base_us) / base_us if base_us > 0 else 0.0
            status = "ok"
            if delta > args.threshold:
                status = "REGRESSION" if enforced else "slow (not enforced)"
                failures += enforced
            print(f"  [{status}] {ident}: {base_us:.4g} -> {fresh_us:.4g} "
                  f"{field} ({delta:+.1%})")
    for key in sorted(set(fresh_by_key) - set(base_by_key)):
        ident = ", ".join(f"{f}={v}" for f, v in key)
        print(f"  [new] {ident} (no baseline yet)")

    floor_failures = 0
    if args.speedup_floor is not None:
        # The speedup floor gates the fresh run directly: speedup_vs_scalar
        # is a paired same-machine ratio (scheduler cell vs the scalar
        # baseline interleaved rep by rep), so it transfers across machines
        # where absolute microseconds do not.
        for row in fresh_rows:
            if "speedup_vs_scalar" not in row:
                continue
            if row.get("docs", 0) < args.min_docs:
                continue
            ratio = row["speedup_vs_scalar"]
            if ratio < args.speedup_floor:
                ident = ", ".join(f"{f}={row[f]}" for f in
                                  ("docs", "shards", "batch", "mode")
                                  if f in row)
            else:
                continue
            print(f"  [FLOOR] {ident}: speedup_vs_scalar {ratio:.3f} "
                  f"< {args.speedup_floor:.3f}")
            floor_failures += 1

    ceiling_failures = 0
    if args.overhead_ceiling is not None:
        # Same transferability argument as the speedup floor: the overhead
        # is measured against the feature-off baseline of the same run, so
        # the gate holds on any machine. Gated modes: "async" (durability's
        # journaled ingest — pure copy + bookkeeping; per-record fsync
        # latency is a property of the storage stack, not the code) and
        # "deadline" (robustness's armed-checkpoint serving sweep).
        for row in fresh_rows:
            if "overhead_vs_off" not in row or \
                    row.get("mode") not in ("async", "deadline"):
                continue
            if row.get("docs", 0) < args.min_docs:
                continue
            overhead = row["overhead_vs_off"]
            if overhead > args.overhead_ceiling:
                ident = ", ".join(f"{f}={row[f]}" for f in
                                  ("docs", "shards", "phase", "mode")
                                  if f in row)
                print(f"  [CEILING] {ident}: overhead_vs_off "
                      f"{overhead:+.1%} > {args.overhead_ceiling:.1%}")
                ceiling_failures += 1

    p99_failures = 0
    if args.p99_ratio_ceiling is not None:
        # Paired same-run ratio like the overhead ceiling: the live bench
        # measures query p99 idle and under concurrent ingest in one run,
        # so the ratio gates on any machine.
        for row in fresh_rows:
            if "p99_vs_idle" not in row:
                continue
            if row.get("docs", 0) < args.min_docs:
                continue
            ratio = row["p99_vs_idle"]
            if ratio > args.p99_ratio_ceiling:
                ident = ", ".join(f"{f}={row[f]}" for f in
                                  ("docs", "shards", "mode")
                                  if f in row)
                print(f"  [CEILING] {ident}: p99_vs_idle {ratio:.3f} "
                      f"> {args.p99_ratio_ceiling:.3f}")
                p99_failures += 1

    print(f"bench_check: {fresh_name}: {compared} rows compared, "
          f"{failures} enforced regressions "
          f"(threshold {args.threshold:.0%} at docs >= {args.min_docs:g})"
          + (f", {floor_failures} below speedup floor "
             f"{args.speedup_floor:g}" if args.speedup_floor is not None
             else "")
          + (f", {ceiling_failures} above overhead ceiling "
             f"{args.overhead_ceiling:g}" if args.overhead_ceiling is not None
             else "")
          + (f", {p99_failures} above p99 ratio ceiling "
             f"{args.p99_ratio_ceiling:g}"
             if args.p99_ratio_ceiling is not None else "")
          + (f", {missing_failures} required rows missing"
             if args.require_rows else ""))
    return 1 if (failures or floor_failures or ceiling_failures or
                 p99_failures or missing_failures) else 0


if __name__ == "__main__":
    sys.exit(main())
