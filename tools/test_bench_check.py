#!/usr/bin/env python3
"""Unit tests for tools/bench_check.py (run by the CI workflow).

Exercises the documented exit-code contract end to end through real
subprocess invocations: 0 ok, 1 enforced regression / violated gate /
missing required row, 2 usage or schema error — and in particular the
missing-baseline-row path, which must produce a clear diagnostic and a
nonzero exit rather than a bare KeyError traceback.

Usage: python3 tools/test_bench_check.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "bench_check.py")


def bench_file(rows, bench="live_ingest"):
    return {"bench": bench, "rows": rows}


def row(docs, us_per_query, **extra):
    merged = {"docs": docs, "mode": "scan", "us_per_query": us_per_query}
    merged.update(extra)
    return merged


class BenchCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as handle:
            if isinstance(payload, str):
                handle.write(payload)
            else:
                json.dump(payload, handle)
        return path

    def run_check(self, fresh, baseline, *flags):
        return subprocess.run(
            [sys.executable, CHECK, fresh, baseline, *flags],
            capture_output=True, text=True)

    def test_identical_files_pass(self):
        path = self.write("fresh.json", bench_file([row(100000, 10.0)]))
        result = self.run_check(path, path)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("[ok]", result.stdout)

    def test_enforced_regression_fails(self):
        base = self.write("base.json", bench_file([row(100000, 10.0)]))
        fresh = self.write("fresh.json", bench_file([row(100000, 20.0)]))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_small_row_regression_not_enforced(self):
        base = self.write("base.json", bench_file([row(1000, 10.0)]))
        fresh = self.write("fresh.json", bench_file([row(1000, 20.0)]))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("not enforced", result.stdout)

    def test_missing_baseline_row_warns_by_default(self):
        # A truncated smoke ladder must stay a warning, not a crash and not
        # a failure.
        base = self.write("base.json", bench_file(
            [row(10000, 10.0), row(100000, 12.0)]))
        fresh = self.write("fresh.json", bench_file([row(10000, 10.0)]))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("[missing]", result.stdout)
        self.assertNotIn("KeyError", result.stderr)

    def test_missing_baseline_row_fails_under_require_rows(self):
        # The bugfix under test: a clear "missing baseline row" diagnostic
        # plus nonzero exit — never a bare KeyError traceback.
        base = self.write("base.json", bench_file(
            [row(10000, 10.0), row(100000, 12.0)]))
        fresh = self.write("fresh.json", bench_file([row(10000, 10.0)]))
        result = self.run_check(fresh, base, "--require-rows")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("missing baseline row", result.stderr)
        self.assertIn("docs=100000", result.stderr)
        self.assertNotIn("KeyError", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_new_fresh_row_is_reported_not_failed(self):
        base = self.write("base.json", bench_file([row(10000, 10.0)]))
        fresh = self.write("fresh.json", bench_file(
            [row(10000, 10.0), row(100000, 12.0)]))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("[new]", result.stdout)

    def test_bench_name_mismatch_is_usage_error(self):
        base = self.write("base.json", bench_file([row(10000, 10.0)], "a"))
        fresh = self.write("fresh.json", bench_file([row(10000, 10.0)], "b"))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("mismatch", result.stderr)

    def test_unreadable_file_is_usage_error(self):
        path = self.write("fresh.json", bench_file([row(10000, 10.0)]))
        result = self.run_check(path, os.path.join(self.tmp.name, "no.json"))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("cannot read", result.stderr)

    def test_schema_error_is_usage_error(self):
        good = self.write("fresh.json", bench_file([row(10000, 10.0)]))
        bad = self.write("bad.json", "[1, 2, 3]")
        result = self.run_check(good, bad)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("not an emit_json file", result.stderr)

    def test_p99_ratio_ceiling_gates_fresh_rows(self):
        rows = [row(100000, 10.0, us_p99=50.0, p99_vs_idle=1.4,
                    sigs_per_sec=80000.0)]
        base = self.write("base.json", bench_file(rows))
        fresh = self.write("fresh.json", bench_file(rows))
        ok = self.run_check(fresh, base, "--p99-ratio-ceiling", "2.0")
        self.assertEqual(ok.returncode, 0, ok.stdout + ok.stderr)
        bad = self.run_check(fresh, base, "--p99-ratio-ceiling", "1.2")
        self.assertEqual(bad.returncode, 1, bad.stdout + bad.stderr)
        self.assertIn("p99_vs_idle", bad.stdout)
        self.assertIn("[CEILING]", bad.stdout)

    def test_p99_ratio_not_enforced_below_min_docs(self):
        rows = [row(1000, 10.0, p99_vs_idle=5.0)]
        base = self.write("base.json", bench_file(rows))
        fresh = self.write("fresh.json", bench_file(rows))
        result = self.run_check(fresh, base, "--p99-ratio-ceiling", "1.2")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_measured_fields_do_not_split_row_identity(self):
        # sigs_per_sec / p99_vs_idle etc. are measurements: two runs with
        # different values must still join on the same row.
        base = self.write("base.json", bench_file(
            [row(100000, 10.0, sigs_per_sec=80000.0, p99_vs_idle=1.3)]))
        fresh = self.write("fresh.json", bench_file(
            [row(100000, 10.5, sigs_per_sec=90000.0, p99_vs_idle=1.1)]))
        result = self.run_check(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("1 rows compared", result.stdout)
        self.assertNotIn("[new]", result.stdout)
        self.assertNotIn("[missing]", result.stdout)


if __name__ == "__main__":
    unittest.main()
