// fmeter-inspect: command-line utility for working with signature corpora.
//
//   fmeter_inspect collect <out.fmc> <workload> [workload...]
//       Boots a simulated system, runs the named workloads under the Fmeter
//       tracer (120 signatures each) and saves the labeled corpus.
//       Workloads: scp kcompile dbench apachebench netperf151 netperf143
//                  netperf151nolro bootup
//
//   fmeter_inspect stats <corpus.fmc|snapshot.fms>
//       Prints per-label document counts, corpus vocabulary statistics,
//       per-shard inverted-index statistics (docs, frozen docs, terms,
//       postings, and the memory footprint split into postings / offsets /
//       block-metadata / forward-store bytes) and the cosine-similarity
//       matrix between per-label tf-idf centroids. The index is bulk-loaded
//       (parallel per-shard builds, frozen posting arenas).
//
//   fmeter_inspect topterms <corpus.fmc> <label> [n]
//       Prints the n (default 15) highest-weighted kernel functions of the
//       label's centroid signature — "what does this behavior do in the
//       kernel?".
//
//   fmeter_inspect search <corpus.fmc|snapshot.fms> <doc-index> [k]
//                         [--policy P]
//       Uses document <doc-index> as a query against an archive of all the
//       other documents and prints the top-k hits (the paper's operator
//       workflow: "which past incidents looked like this?"), plus the
//       index's per-shard statistics and the query's execution counters
//       (documents scored, documents pruned, posting entries visited,
//       blocks skipped, forward-store gathers).
//       P selects the execution path: "auto" (the default — picks exact
//       or pruned per shard from the measured size crossover), "scan"
//       (brute-force linear scan), "indexed" (exact inverted-index pass)
//       or "pruned" (max-score pruning — same hits, scores within 1e-9).
//
//   fmeter_inspect snapshot <corpus.fmc> <out.fms>
//       Builds the signature database from the corpus once (tf-idf +
//       parallel bulk index build) and saves it as a versioned, checksummed
//       binary snapshot. `stats` and `search` accept a snapshot wherever
//       they accept a corpus (sniffed by magic), restoring the database
//       without re-tokenizing or re-indexing — the archive workflow the
//       paper's operator runs day to day. When searching a snapshot the
//       query document stays in the archive (expect it at rank 1).
//
//   fmeter_inspect metrics <corpus.fmc|snapshot.fms> [queries]
//       Loads the archive, drives a representative workload through it
//       (bulk ingest, a batch of sample queries, classification, a
//       snapshot save/load round-trip) and dumps everything the metrics
//       registry observed — query/stage latency histograms with p50/p99,
//       ingest and snapshot timings, task-pool utilization — in Prometheus
//       text exposition format (default) or JSON (--json).
//
//   fmeter_inspect verify <snapshot.fms>
//       Deep-checksums an archive without loading it into RAM: streams
//       every section through its checksum in bounded memory and reports
//       the per-section verdicts — the integrity check an operator runs
//       against a cold archive before trusting it.
//
//   fmeter_inspect recover <dir>
//       Opens a durable archive directory (MANIFEST + snapshot + journal),
//       performing the same recovery the database does at startup: loads
//       the manifest's snapshot, replays the journal — truncating a torn
//       tail — and sweeps unreferenced files. Prints what was found and
//       done: epoch, files, records replayed vs bytes dropped, leftovers
//       removed.
//
//   `stats`, `search`, `metrics`, `verify` and `recover` accept --json for
//   machine-readable output.
//
//   `search` accepts --deadline-ms <n>: a cooperative per-query budget.
//   An over-budget query stops mid-shard and reports its outcome
//   (deadline_exceeded) plus whatever partial hits completed shards
//   produced, instead of running to completion.
//
//   Exit codes: 0 success, 1 runtime failure (missing/corrupt/out-of-range
//   input), 2 usage error (bad flags or arguments). Under --json, errors
//   are emitted as a structured object on stdout —
//   {"error": {"class": ..., "message": ..., "exit_code": ...}} — never as
//   bare stderr text, so scripted callers parse one format for both
//   success and failure.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "fmeter/durable_database.hpp"
#include "fmeter/fmeter.hpp"
#include "index/snapshot.hpp"
#include "io/env.hpp"
#include "io/journal.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "vsm/corpus_io.hpp"

using namespace fmeter;

namespace {

// Exit-code contract (also documented in the file header): every path out
// of the tool returns one of these three, and --json callers additionally
// get a structured error object on stdout instead of free-form stderr.
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;  ///< valid invocation, failing input/IO
constexpr int kExitUsage = 2;    ///< malformed flags or arguments

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// The one funnel for failures: structured JSON object on stdout when the
/// caller asked for --json, classic stderr line otherwise. `error_class`
/// is a stable machine-matchable tag ("usage", "io", "corrupt", ...).
int fail(bool json, int exit_code, const char* error_class,
         const std::string& message) {
  if (json) {
    std::printf(
        "{\"error\": {\"class\": \"%s\", \"message\": \"%s\", "
        "\"exit_code\": %d}}\n",
        error_class, json_escape(message).c_str(), exit_code);
  } else {
    std::fprintf(stderr, "fmeter_inspect: %s\n", message.c_str());
  }
  return exit_code;
}

int usage(bool json = false) {
  if (json) {
    return fail(json, kExitUsage, "usage",
                "invalid arguments; run fmeter_inspect without arguments "
                "for the command list");
  }
  std::fprintf(
      stderr,
      "usage:\n"
      "  fmeter_inspect collect <out.fmc> <workload> [workload...]\n"
      "  fmeter_inspect stats <corpus.fmc|snapshot.fms> [--json]\n"
      "  fmeter_inspect topterms <corpus.fmc> <label> [n]\n"
      "  fmeter_inspect search <corpus.fmc|snapshot.fms> <doc-index> [k] "
      "[--policy auto|scan|indexed|pruned] [--deadline-ms n] [--json]\n"
      "  fmeter_inspect snapshot <corpus.fmc> <out.fms>\n"
      "  fmeter_inspect metrics <corpus.fmc|snapshot.fms> [queries] "
      "[--json]\n"
      "  fmeter_inspect verify <snapshot.fms> [--json]\n"
      "  fmeter_inspect recover <dir> [--json]\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage error\n");
  return kExitUsage;
}

/// Strips a `--json` flag out of argv (anywhere after the subcommand) and
/// reports whether it was present — every subcommand that supports JSON
/// output shares this.
bool take_json_flag(int& argc, char** argv) {
  bool json = false;
  int out = 0;
  for (int arg = 0; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--json") == 0) {
      json = true;
      continue;
    }
    argv[out++] = argv[arg];
  }
  argc = out;
  return json;
}

/// Human-readable byte count: "512 B", "37.2 KiB", "4.6 MiB", "1.2 GiB".
std::string format_bytes(std::size_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else if (b < 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

/// True when `path` starts with the snapshot magic (vs. the text corpus
/// format); lets stats/search take either file kind.
bool is_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[sizeof(index::snapshot::kMagic)];
  return in.read(magic, sizeof(magic)) &&
         std::memcmp(magic, index::snapshot::kMagic, sizeof(magic)) == 0;
}

std::map<std::string, workloads::WorkloadKind> workload_names() {
  return {
      {"scp", workloads::WorkloadKind::kScp},
      {"kcompile", workloads::WorkloadKind::kKcompile},
      {"dbench", workloads::WorkloadKind::kDbench},
      {"apachebench", workloads::WorkloadKind::kApachebench},
      {"netperf151", workloads::WorkloadKind::kNetperf151},
      {"netperf143", workloads::WorkloadKind::kNetperf143},
      {"netperf151nolro", workloads::WorkloadKind::kNetperf151NoLro},
      {"bootup", workloads::WorkloadKind::kBootup},
  };
}


/// Per-shard statistics, memory split by component (see
/// index::MemoryBreakdown): postings = arena streams + tail lists,
/// offsets = per-term tables + bounds + id maps, blocks = block-max
/// metadata, forward = forward store + norms.
void print_shard_table(const exec::ShardedIndex& index) {
  std::printf("%6s %8s %8s %8s %10s | %9s %9s %9s %9s KiB\n", "shard", "docs",
              "frozen", "terms", "postings", "post", "offs", "blocks", "fwd");
  const auto shard_stats = index.shard_stats();
  for (std::size_t s = 0; s < shard_stats.size(); ++s) {
    const auto& mem = shard_stats[s].memory;
    std::printf("%6zu %8zu %8zu %8zu %10zu | %9.1f %9.1f %9.1f %9.1f\n", s,
                shard_stats[s].docs, shard_stats[s].frozen_docs,
                shard_stats[s].terms, shard_stats[s].postings,
                static_cast<double>(mem.postings) / 1024.0,
                static_cast<double>(mem.offsets) / 1024.0,
                static_cast<double>(mem.blocks) / 1024.0,
                static_cast<double>(mem.forward) / 1024.0);
  }
}

/// One coherent, registry-backed observability table: every counter and
/// gauge the process accumulated (query dispatch, pruning, task pool,
/// ingest) plus per-histogram latency quantiles. The QueryStats /
/// shard-stats structs remain available as per-call views; this is the
/// cumulative, process-wide truth they all feed.
void print_registry_table() {
  // Make sure the shared pool's collector is registered before scraping —
  // the indexed paths above will have materialized it anyway.
  exec::TaskPool::shared();
  const auto snap = obs::MetricsRegistry::global().scrape();
  std::printf("%-44s %14s\n", "counter", "value");
  for (const auto& sample : snap.counters) {
    std::printf("%-44s %14llu\n", sample.name.c_str(),
                static_cast<unsigned long long>(sample.value));
  }
  std::printf("%-44s %14s\n", "gauge", "value");
  for (const auto& sample : snap.gauges) {
    std::printf("%-44s %14.2f\n", sample.name.c_str(), sample.value);
  }
  std::printf("%-38s %10s %10s %10s %10s\n", "histogram (us)", "count",
              "mean", "p50", "p99");
  for (const auto& sample : snap.histograms) {
    const auto& hist = sample.snapshot;
    // Same rename as the exporters: recorded in ns, reported in us.
    std::string name = sample.name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
      name = name.substr(0, name.size() - 3) + "_us";
    }
    std::printf("%-38s %10llu %10.2f %10.2f %10.2f\n", name.c_str(),
                static_cast<unsigned long long>(hist.count),
                hist.mean() / 1000.0, hist.quantile(0.50) / 1000.0,
                hist.quantile(0.99) / 1000.0);
  }
  const auto per_worker = exec::TaskPool::shared().worker_span_counts();
  std::printf("worker spans:");
  for (const auto spans : per_worker) {
    std::printf(" %llu", static_cast<unsigned long long>(spans));
  }
  std::printf("\n");
}

int cmd_collect(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string out_path = argv[2];
  const auto names = workload_names();

  core::MonitoredSystem system;
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 120;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.4;

  vsm::Corpus corpus;
  for (int arg = 3; arg < argc; ++arg) {
    const auto it = names.find(argv[arg]);
    if (it == names.end()) {
      return fail(false, kExitUsage, "usage",
                  std::string("unknown workload: ") + argv[arg]);
    }
    std::printf("collecting %zu signatures of %s...\n",
                gen.signatures_per_workload, argv[arg]);
    corpus.append(core::collect_signatures(system, it->second, gen));
  }
  vsm::save_corpus(out_path, corpus);
  std::printf("wrote %zu signatures to %s\n", corpus.size(), out_path.c_str());
  return 0;
}

/// Shared tail of `stats`: index shape, shard table, per-label support and
/// the centroid similarity matrix — everything derivable from the database
/// alone, so it works for corpus-built and snapshot-loaded archives alike.
void print_database_stats(const core::SignatureDatabase& db) {
  const auto syndromes = db.syndromes();

  const auto& index = db.index();
  std::printf("index: %zu shards, %zu distinct terms, %zu postings, %s\n",
              index.num_shards(), index.num_terms(), index.num_postings(),
              format_bytes(index.memory_bytes()).c_str());
  print_shard_table(index);
  db.publish_gauges();
  print_registry_table();
  std::printf("\n");

  std::printf("%-28s %8s\n", "label", "docs");
  for (const auto& syndrome : syndromes) {
    std::printf("%-28s %8zu\n", syndrome.label.c_str(), syndrome.support);
  }

  std::printf("\ncentroid cosine similarity matrix:\n%-28s", "");
  for (std::size_t j = 0; j < syndromes.size(); ++j) {
    std::printf(" %7zu", j);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < syndromes.size(); ++i) {
    std::printf("%2zu %-25s", i, syndromes[i].label.c_str());
    for (std::size_t j = 0; j < syndromes.size(); ++j) {
      std::printf(" %7.4f", vsm::cosine_similarity(syndromes[i].centroid,
                                                   syndromes[j].centroid));
    }
    std::printf("\n");
  }
}

/// Machine-readable `stats`: index shape, per-shard table, per-label
/// support, and the full registry dump nested under "metrics".
void print_stats_json(const core::SignatureDatabase& db, const char* source) {
  const auto& index = db.index();
  std::printf("{\n  \"source\": \"%s\",\n  \"documents\": %zu,\n", source,
              db.size());
  std::printf(
      "  \"index\": {\"shards\": %zu, \"terms\": %zu, \"postings\": %zu, "
      "\"memory_bytes\": %zu},\n",
      index.num_shards(), index.num_terms(), index.num_postings(),
      index.memory_bytes());
  std::printf("  \"shards\": [");
  const auto shard_stats = index.shard_stats();
  for (std::size_t s = 0; s < shard_stats.size(); ++s) {
    std::printf(
        "%s\n    {\"docs\": %zu, \"frozen_docs\": %zu, \"terms\": %zu, "
        "\"postings\": %zu, \"memory_bytes\": %zu}",
        s == 0 ? "" : ",", shard_stats[s].docs, shard_stats[s].frozen_docs,
        shard_stats[s].terms, shard_stats[s].postings,
        shard_stats[s].memory_bytes);
  }
  std::printf("\n  ],\n  \"labels\": [");
  const auto syndromes = db.syndromes();
  for (std::size_t i = 0; i < syndromes.size(); ++i) {
    std::printf("%s\n    {\"label\": \"%s\", \"docs\": %zu}",
                i == 0 ? "" : ",", json_escape(syndromes[i].label).c_str(),
                syndromes[i].support);
  }
  db.publish_gauges();
  const std::string metrics =
      obs::to_json(obs::MetricsRegistry::global().scrape());
  std::printf("\n  ],\n  \"metrics\": %s}\n", metrics.c_str());
}

int cmd_stats(int argc, char** argv) {
  const bool json = take_json_flag(argc, argv);
  if (argc != 3) return usage(json);
  if (is_snapshot_file(argv[2])) {
    core::SignatureDatabase db;
    db.load(argv[2]);
    if (json) {
      print_stats_json(db, "snapshot");
      return 0;
    }
    std::printf("snapshot: %zu signatures restored from %s "
                "(no re-indexing)\n\n",
                db.size(), argv[2]);
    print_database_stats(db);
    return 0;
  }
  const vsm::Corpus corpus = vsm::load_corpus(argv[2]);

  vsm::TfIdfModel model;
  auto signatures = core::signatures_from(corpus, {}, &model);
  if (!json) {
    std::printf(
        "documents: %zu   vocabulary: %zu terms   dimension bound: %zu\n\n",
        corpus.size(), model.vocabulary_size(), corpus.dimension_bound());
  }

  core::SignatureDatabase db;
  {
    std::vector<std::string> labels;
    labels.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      labels.push_back(corpus[i].label);
    }
    // Parallel build + freeze; signatures are not needed afterwards, so
    // hand the whole corpus over instead of deep-copying it.
    db.add_batch(std::move(signatures), std::move(labels));
  }
  if (json) {
    print_stats_json(db, "corpus");
    return 0;
  }

  // Raw-count detail only the corpus knows (a snapshot stores tf-idf
  // signatures, not interval call counts).
  std::printf("%-28s %14s\n", "label", "mean calls/doc");
  for (const auto& label : corpus.labels()) {
    std::uint64_t calls = 0;
    std::size_t docs = 0;
    for (const auto& doc : corpus.documents()) {
      if (doc.label == label) {
        calls += doc.total();
        ++docs;
      }
    }
    std::printf("%-28s %14.0f\n", label.c_str(),
                docs ? static_cast<double>(calls) / static_cast<double>(docs)
                     : 0.0);
  }
  std::printf("\n");

  print_database_stats(db);
  return 0;
}

int cmd_snapshot(int argc, char** argv) {
  if (argc != 4) return usage();
  const vsm::Corpus corpus = vsm::load_corpus(argv[2]);
  auto signatures = core::signatures_from(corpus);

  core::SignatureDatabase db;
  {
    std::vector<std::string> labels;
    labels.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      labels.push_back(corpus[i].label);
    }
    db.add_batch(std::move(signatures), std::move(labels));
  }
  db.save(argv[3]);
  std::printf("wrote snapshot of %zu signatures (%zu shards, %zu terms) "
              "to %s\n",
              db.size(), db.num_shards(), db.index().num_terms(), argv[3]);
  return 0;
}

int cmd_topterms(int argc, char** argv) {
  if (argc != 4 && argc != 5) return usage();
  const vsm::Corpus corpus = vsm::load_corpus(argv[2]);
  const std::string label = argv[3];
  const std::size_t n = argc == 5 ? std::strtoul(argv[4], nullptr, 10) : 15;

  const auto signatures = core::signatures_from(corpus);
  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i], corpus[i].label);
  }
  for (const auto& syndrome : db.syndromes()) {
    if (syndrome.label != label) continue;
    // Resolve term ids back to kernel symbols through a fresh symbol table
    // (deterministic construction: ids match the collecting system's).
    const simkern::SymbolTable symbols;
    std::vector<std::pair<double, std::uint32_t>> weighted;
    const auto indices = syndrome.centroid.indices();
    const auto values = syndrome.centroid.values();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      weighted.emplace_back(values[i], indices[i]);
    }
    std::sort(weighted.rbegin(), weighted.rend());
    std::printf("top %zu tf-idf terms of '%s' (%zu member signatures):\n", n,
                label.c_str(), syndrome.support);
    for (std::size_t i = 0; i < std::min(n, weighted.size()); ++i) {
      const auto& fn = symbols.by_id(weighted[i].second);
      std::printf("  %8.5f  %-40s [%s]\n", weighted[i].first, fn.name.c_str(),
                  simkern::subsystem_name(fn.subsystem));
    }
    return 0;
  }
  return fail(false, kExitRuntime, "not-found",
              "label '" + label + "' not present in corpus");
}

int cmd_search(int argc, char** argv) {
  const bool json = take_json_flag(argc, argv);
  // Positional arguments first (corpus, doc-index, optional k), then the
  // optional --policy / --deadline-ms flags anywhere after them.
  core::ScanPolicy policy = core::ScanPolicy::kIndexed;
  core::PruningMode mode = core::PruningMode::kAuto;
  const char* policy_name = "auto";
  long long deadline_ms = -1;  // < 0: no deadline
  std::vector<const char*> positional;
  for (int arg = 2; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--policy") == 0) {
      if (arg + 1 >= argc) return usage(json);
      policy_name = argv[++arg];
      if (std::strcmp(policy_name, "scan") == 0) {
        policy = core::ScanPolicy::kBruteForce;
        mode = core::PruningMode::kExact;
      } else if (std::strcmp(policy_name, "indexed") == 0) {
        policy = core::ScanPolicy::kIndexed;
        mode = core::PruningMode::kExact;
      } else if (std::strcmp(policy_name, "pruned") == 0) {
        policy = core::ScanPolicy::kIndexed;
        mode = core::PruningMode::kMaxScore;
      } else if (std::strcmp(policy_name, "auto") == 0) {
        policy = core::ScanPolicy::kIndexed;
        mode = core::PruningMode::kAuto;
      } else {
        return fail(json, kExitUsage, "usage",
                    std::string("unknown --policy '") + policy_name +
                        "' (auto|scan|indexed|pruned)");
      }
    } else if (std::strcmp(argv[arg], "--deadline-ms") == 0) {
      if (arg + 1 >= argc) return usage(json);
      char* dend = nullptr;
      deadline_ms = std::strtoll(argv[++arg], &dend, 10);
      if (dend == argv[arg] || *dend != '\0' || deadline_ms < 0) {
        return fail(json, kExitUsage, "usage",
                    std::string("--deadline-ms must be a non-negative "
                                "number, got '") +
                        argv[arg] + "'");
      }
    } else {
      positional.push_back(argv[arg]);
    }
  }
  if (positional.size() != 2 && positional.size() != 3) return usage(json);
  // The doc index selects which incident gets analyzed — reject non-numeric
  // input rather than silently querying doc 0.
  char* end = nullptr;
  const std::size_t query_doc = std::strtoul(positional[1], &end, 10);
  if (end == positional[1] || *end != '\0') {
    return fail(json, kExitUsage, "usage",
                std::string("doc-index must be a number, got '") +
                    positional[1] + "'");
  }
  std::size_t k = 10;
  if (positional.size() == 3) {
    k = std::strtoul(positional[2], &end, 10);
    if (end == positional[2] || *end != '\0' || k == 0) {
      return fail(json, kExitUsage, "usage",
                  std::string("k must be a positive number, got '") +
                      positional[2] + "'");
    }
  }

  core::SignatureDatabase db;
  vsm::SparseVector query;
  std::string query_label;
  std::vector<std::size_t> archive_doc;  // db id -> source doc index
  if (is_snapshot_file(positional[0])) {
    // Snapshot path: the archive is restored as-is (no re-indexing), so
    // the query document stays in it — expect a self-hit at rank 1.
    db.load(positional[0]);
    if (query_doc >= db.size()) {
      return fail(json, kExitRuntime, "out-of-range",
                  "doc-index " + std::to_string(query_doc) +
                      " out of range (snapshot has " +
                      std::to_string(db.size()) + " docs)");
    }
    query = db.signature(query_doc);
    query_label = db.label(query_doc);
    archive_doc.resize(db.size());
    for (std::size_t i = 0; i < db.size(); ++i) archive_doc[i] = i;
  } else {
    const vsm::Corpus corpus = vsm::load_corpus(positional[0]);
    if (query_doc >= corpus.size()) {
      return fail(json, kExitRuntime, "out-of-range",
                  "doc-index " + std::to_string(query_doc) +
                      " out of range (corpus has " +
                      std::to_string(corpus.size()) + " docs)");
    }
    const auto signatures = core::signatures_from(corpus);
    std::vector<vsm::SparseVector> batch;
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (i == query_doc) continue;  // leave the query out of the archive
      batch.push_back(signatures[i]);
      labels.push_back(corpus[i].label);
      archive_doc.push_back(i);
    }
    query = signatures[query_doc];
    query_label = corpus[query_doc].label;
    db.add_batch(std::move(batch), std::move(labels));  // parallel + frozen
  }

  core::QueryStats stats;
  core::SearchOptions options;
  std::vector<core::QueryOutcome> outcomes;
  options.outcomes = &outcomes;
  if (deadline_ms >= 0) {
    options.deadline =
        core::Deadline::after(std::chrono::milliseconds(deadline_ms));
  }
  const auto hits = db.search(query, k, core::SimilarityMetric::kCosine,
                              policy, mode, &stats, options);
  const char* outcome = core::outcome_name(
      outcomes.empty() ? core::QueryOutcome::kOk : outcomes.front());
  if (json) {
    std::printf(
        "{\n  \"query_doc\": %zu,\n  \"label\": \"%s\",\n"
        "  \"policy\": \"%s\",\n  \"outcome\": \"%s\",\n"
        "  \"archive_documents\": %zu,\n"
        "  \"hits\": [",
        query_doc, json_escape(query_label).c_str(), policy_name, outcome,
        db.size());
    for (std::size_t rank = 0; rank < hits.size(); ++rank) {
      std::printf(
          "%s\n    {\"rank\": %zu, \"doc\": %zu, \"label\": \"%s\", "
          "\"score\": %.17g}",
          rank == 0 ? "" : ",", rank + 1, archive_doc[hits[rank].id],
          json_escape(hits[rank].label).c_str(), hits[rank].score);
    }
    std::printf(
        "\n  ],\n  \"counters\": {\"docs_scored\": %zu, \"docs_pruned\": "
        "%zu, \"postings_visited\": %zu, \"blocks_skipped\": %zu, "
        "\"forward_gathers\": %zu, \"dispatch_inline\": %llu, "
        "\"dispatch_pooled\": %llu, \"spans_reserved\": %llu, "
        "\"tasks_executed\": %llu, \"checkpoint_polls\": %zu, "
        "\"deadline_exceeded\": %llu, \"cancelled\": %llu, "
        "\"rejected\": %llu, \"partial_results\": %llu}\n}\n",
        stats.docs_scored, stats.docs_pruned, stats.postings_visited,
        stats.blocks_skipped, stats.forward_gathers,
        static_cast<unsigned long long>(stats.dispatch_inline),
        static_cast<unsigned long long>(stats.dispatch_pooled),
        static_cast<unsigned long long>(stats.spans_reserved),
        static_cast<unsigned long long>(stats.tasks_executed),
        stats.checkpoint_polls,
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.partial_results));
    return kExitOk;
  }
  std::printf(
      "query: doc %zu ('%s')   archive: %zu signatures   policy: %s   "
      "outcome: %s\n",
      query_doc, query_label.c_str(), db.size(), policy_name, outcome);
  const auto& index = db.index();
  std::printf("index: %zu shards, %zu terms, %zu postings, %s\n\n",
              index.num_shards(), index.num_terms(), index.num_postings(),
              format_bytes(index.memory_bytes()).c_str());
  print_shard_table(index);
  std::printf("\n%5s %6s %-28s %10s\n", "rank", "doc", "label", "cosine");
  for (std::size_t rank = 0; rank < hits.size(); ++rank) {
    std::printf("%5zu %6zu %-28s %10.4f\n", rank + 1,
                archive_doc[hits[rank].id], hits[rank].label.c_str(),
                hits[rank].score);
  }
  if (policy == core::ScanPolicy::kIndexed) {
    const std::size_t considered = stats.docs_scored + stats.docs_pruned;
    std::printf(
        "\nquery counters: %zu docs scored, %zu docs pruned (%.1f%%), "
        "%zu postings visited, %zu blocks skipped, %zu forward gathers\n",
        stats.docs_scored, stats.docs_pruned,
        considered > 0
            ? 100.0 * static_cast<double>(stats.docs_pruned) /
                  static_cast<double>(considered)
            : 0.0,
        stats.postings_visited, stats.blocks_skipped, stats.forward_gathers);
    std::printf(
        "dispatch: %llu inline / %llu pooled queries, %llu grid spans "
        "reserved, %llu workers joined\n",
        static_cast<unsigned long long>(stats.dispatch_inline),
        static_cast<unsigned long long>(stats.dispatch_pooled),
        static_cast<unsigned long long>(stats.spans_reserved),
        static_cast<unsigned long long>(stats.tasks_executed));
    std::printf(
        "robustness: %zu checkpoint polls, %llu deadline-exceeded, "
        "%llu cancelled, %llu rejected, %llu partial results\n",
        stats.checkpoint_polls,
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.partial_results));
    db.publish_gauges();
    print_registry_table();
  }
  return 0;
}

/// `metrics`: drive a representative workload through the archive so every
/// instrumented stage fires at least once, then dump the registry.
int cmd_metrics(int argc, char** argv) {
  const bool json = take_json_flag(argc, argv);
  if (argc != 3 && argc != 4) return usage(json);
  std::size_t n_queries = 64;
  if (argc == 4) {
    char* end = nullptr;
    n_queries = std::strtoul(argv[3], &end, 10);
    if (end == argv[3] || *end != '\0' || n_queries == 0) {
      return fail(json, kExitUsage, "usage",
                  std::string("queries must be a positive number, got '") +
                      argv[3] + "'");
    }
  }

  core::SignatureDatabase db;
  if (is_snapshot_file(argv[2])) {
    db.load(argv[2]);  // stamps kSnapshotLoad + kIngest
  } else {
    const vsm::Corpus corpus = vsm::load_corpus(argv[2]);
    auto signatures = core::signatures_from(corpus);
    std::vector<std::string> labels;
    labels.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      labels.push_back(corpus[i].label);
    }
    db.add_batch(std::move(signatures), std::move(labels));  // kIngest
  }
  if (db.empty()) {
    return fail(json, kExitRuntime, "empty-archive",
                std::string("archive ") + argv[2] + " holds no documents");
  }

  // Sample queries: stored signatures round-robin, one batch (exercises
  // dispatch/probe/rescore/merge and the batch histograms) plus scalar
  // lookups and a classification (the operator's day-to-day calls).
  std::vector<vsm::SparseVector> queries;
  queries.reserve(n_queries);
  for (std::size_t i = 0; i < n_queries; ++i) {
    queries.push_back(db.signature(i % db.size()));
  }
  (void)db.search_batch(queries, 10, core::SimilarityMetric::kCosine,
                        core::ScanPolicy::kIndexed, core::PruningMode::kAuto);
  for (std::size_t i = 0; i < std::min<std::size_t>(8, n_queries); ++i) {
    (void)db.search(queries[i], 10, core::SimilarityMetric::kCosine,
                    core::ScanPolicy::kIndexed, core::PruningMode::kAuto);
  }
  (void)db.classify_by_syndrome(queries.front());

  // In-memory snapshot round-trip: stamps kSnapshotSave and kSnapshotLoad
  // even when the input was a plain corpus.
  std::stringstream buffer;
  db.save(buffer);
  core::SignatureDatabase reloaded;
  reloaded.load(buffer);

  db.publish_gauges();
  exec::TaskPool::shared();  // ensure the pool's gauges are registered
  const auto snap = obs::MetricsRegistry::global().scrape();
  const std::string out = json ? obs::to_json(snap) : obs::to_prometheus(snap);
  std::fputs(out.c_str(), stdout);
  return 0;
}

using index::snapshot::section_kind_name;

/// `verify`: stream the archive through its checksums in bounded memory —
/// never materializes a section, so it works on archives larger than RAM.
int cmd_verify(int argc, char** argv) {
  const bool json = take_json_flag(argc, argv);
  if (argc != 3) return usage(json);
  std::ifstream in(argv[2], std::ios::binary);
  if (!in.is_open()) {
    return fail(json, kExitRuntime, "io",
                std::string("cannot open ") + argv[2]);
  }
  const index::snapshot::VerifyResult result =
      index::snapshot::verify_stream(in);
  if (json) {
    std::printf(
        "{\n  \"file\": \"%s\",\n  \"ok\": %s,\n  \"error\": \"%s\",\n"
        "  \"shards\": %u,\n  \"documents\": %llu,\n  \"terms\": %llu,\n"
        "  \"bytes\": %llu,\n  \"sections\": [",
        json_escape(argv[2]).c_str(), result.ok ? "true" : "false",
        json_escape(result.error).c_str(), result.shard_count,
        static_cast<unsigned long long>(result.doc_count),
        static_cast<unsigned long long>(result.term_count),
        static_cast<unsigned long long>(result.total_bytes));
    for (std::size_t i = 0; i < result.sections.size(); ++i) {
      const auto& section = result.sections[i];
      std::printf(
          "%s\n    {\"kind\": \"%s\", \"shard\": %u, \"bytes\": %llu, "
          "\"checksum_ok\": %s}",
          i == 0 ? "" : ",", section_kind_name(section.kind), section.shard,
          static_cast<unsigned long long>(section.bytes),
          section.checksum_ok ? "true" : "false");
    }
    std::printf("\n  ]\n}\n");
    return result.ok ? 0 : 1;
  }
  std::printf("%s: %u shards, %llu documents, %llu terms, %s\n", argv[2],
              result.shard_count,
              static_cast<unsigned long long>(result.doc_count),
              static_cast<unsigned long long>(result.term_count),
              format_bytes(result.total_bytes).c_str());
  std::printf("%-18s %6s %12s  %s\n", "section", "shard", "bytes", "checksum");
  for (const auto& section : result.sections) {
    std::printf("%-18s %6u %12llu  %s\n", section_kind_name(section.kind),
                section.shard, static_cast<unsigned long long>(section.bytes),
                section.checksum_ok ? "ok" : "MISMATCH");
  }
  if (result.ok) {
    std::printf("verify: OK\n");
    return 0;
  }
  std::printf("verify: FAILED — %s\n", result.error.c_str());
  return 1;
}

/// `recover`: run startup recovery against a durable directory and report
/// what it found — manifest state, journal replay/truncation, sweep.
int cmd_recover(int argc, char** argv) {
  const bool json = take_json_flag(argc, argv);
  if (argc != 3) return usage(json);
  const std::string dir = argv[2];
  io::Env& env = io::Env::posix();
  if (!env.file_exists(core::manifest_path(dir))) {
    return fail(json, kExitRuntime, "not-found",
                dir + " has no MANIFEST — not a durable archive");
  }
  const core::Manifest manifest = core::read_manifest(env, dir);
  core::DurableDatabase db(env, dir);
  const core::RecoveryInfo& info = db.recovery();
  if (json) {
    std::printf(
        "{\n  \"dir\": \"%s\",\n  \"epoch\": %llu,\n"
        "  \"snapshot\": \"%s\",\n  \"journal\": \"%s\",\n"
        "  \"snapshot_loaded\": %s,\n  \"documents\": %zu,\n"
        "  \"journal_records_replayed\": %llu,\n"
        "  \"journal_truncated\": %s,\n"
        "  \"journal_bytes_dropped\": %llu,\n"
        "  \"truncate_reason\": \"%s\",\n  \"removed_files\": [",
        json_escape(dir).c_str(),
        static_cast<unsigned long long>(manifest.epoch),
        json_escape(manifest.snapshot).c_str(),
        json_escape(manifest.journal).c_str(),
        info.snapshot_loaded ? "true" : "false", db.db().size(),
        static_cast<unsigned long long>(info.journal_records_replayed),
        info.journal_truncated ? "true" : "false",
        static_cast<unsigned long long>(info.journal_bytes_dropped),
        json_escape(info.truncate_reason).c_str());
    for (std::size_t i = 0; i < info.removed_files.size(); ++i) {
      std::printf("%s\"%s\"", i == 0 ? "" : ", ",
                  json_escape(info.removed_files[i]).c_str());
    }
    std::printf("]\n}\n");
    return 0;
  }
  std::printf("%s: epoch %llu\n", dir.c_str(),
              static_cast<unsigned long long>(manifest.epoch));
  std::printf("  snapshot: %s%s\n",
              manifest.snapshot.empty() ? "(none)" : manifest.snapshot.c_str(),
              info.snapshot_loaded ? " (loaded)" : "");
  std::printf("  journal:  %s — %llu records replayed\n",
              manifest.journal.c_str(),
              static_cast<unsigned long long>(info.journal_records_replayed));
  if (info.journal_truncated) {
    std::printf("  torn tail truncated: %llu bytes dropped (%s)\n",
                static_cast<unsigned long long>(info.journal_bytes_dropped),
                info.truncate_reason.c_str());
  }
  for (const auto& name : info.removed_files) {
    std::printf("  swept unreferenced file: %s\n", name.c_str());
  }
  std::printf("recovered database: %zu signatures, %zu shards, %zu terms\n",
              db.db().size(), db.db().num_shards(),
              db.db().index().num_terms());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Detect --json up front so even exception paths and the usage screen can
  // honor the machine-readable contract. take_json_flag still strips it per
  // command; this scan only chooses the error format.
  bool json = false;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--json") == 0) json = true;
  }
  if (argc < 2) return usage(json);
  // Corrupt snapshots and malformed corpora surface as exceptions with a
  // diagnostic message; an operator tool should print that, not terminate.
  try {
    if (std::strcmp(argv[1], "collect") == 0) return cmd_collect(argc, argv);
    if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
    if (std::strcmp(argv[1], "topterms") == 0) return cmd_topterms(argc, argv);
    if (std::strcmp(argv[1], "search") == 0) return cmd_search(argc, argv);
    if (std::strcmp(argv[1], "snapshot") == 0) return cmd_snapshot(argc, argv);
    if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(argc, argv);
    if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(argc, argv);
    if (std::strcmp(argv[1], "recover") == 0) return cmd_recover(argc, argv);
  } catch (const std::exception& error) {
    return fail(json, kExitRuntime, "exception", error.what());
  }
  return usage(json);
}
