#!/usr/bin/env python3
"""Validate Prometheus text exposition output and require metric names.

CI pipes ``fmeter_inspect metrics`` through this script: it parses every
line of the text format (HELP/TYPE comments, ``name[{labels}] value``
samples), fails on malformed lines, and then checks that every metric name
passed via ``--require`` appeared with at least one sample. Histogram
conventions are enforced where a TYPE declares one: its ``_bucket`` series
must carry an ``le`` label, end with ``le="+Inf"``, and the +Inf count must
equal the ``_count`` sample.

Usage:
  ./build/fmeter_inspect metrics | tools/prom_check.py \
      --require fmeter_query_batch_us --require fmeter_taskpool_workers

Exit status: 0 ok, 1 validation failure, 2 usage error.
"""

import argparse
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(rf"^# HELP ({NAME}) .*$")
TYPE_RE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary|untyped)$")
SAMPLE_RE = re.compile(
    rf"^({NAME})(\{{[^{{}}]*\}})? "
    r"(-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|\+?Inf|NaN))$")
LABEL_RE = re.compile(rf'^{NAME}="(?:[^"\\]|\\.)*"$')


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default="-",
                        help="file to check ('-' or absent: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric name that must have >= 1 sample "
                             "(repeatable)")
    args = parser.parse_args()

    text = (sys.stdin.read() if args.path == "-"
            else open(args.path).read())
    errors = []
    seen = set()          # base metric names with at least one sample
    types = {}            # name -> declared type
    # Histogram bookkeeping: name -> {"last_le": str, "inf": float,
    # "count": float}
    histograms = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            if HELP_RE.match(line):
                continue
            type_match = TYPE_RE.match(line)
            if type_match:
                name, kind = type_match.groups()
                if name in types and types[name] != kind:
                    errors.append(f"line {lineno}: {name} re-declared as "
                                  f"{kind} (was {types[name]})")
                types[name] = kind
                continue
            errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        sample = SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, labels, value = sample.groups()
        if labels:
            for label in labels[1:-1].split(","):
                if label and not LABEL_RE.match(label):
                    errors.append(f"line {lineno}: malformed label "
                                  f"{label!r}")
        seen.add(name)
        # Fold histogram series into their base metric name.
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[:-len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                seen.add(base)
                hist = histograms.setdefault(
                    base, {"last_le": None, "inf": None, "count": None})
                if suffix == "_bucket":
                    le = re.search(r'le="([^"]*)"', labels or "")
                    if le is None:
                        errors.append(f"line {lineno}: {name} sample "
                                      f"without an le label")
                    else:
                        hist["last_le"] = le.group(1)
                        if le.group(1) == "+Inf":
                            hist["inf"] = float(value)
                elif suffix == "_count":
                    hist["count"] = float(value)

    for name, hist in sorted(histograms.items()):
        if hist["last_le"] != "+Inf":
            errors.append(f"{name}: bucket series does not end with "
                          f'le="+Inf" (last was {hist["last_le"]!r})')
        elif hist["count"] is not None and hist["inf"] != hist["count"]:
            errors.append(f"{name}: +Inf bucket {hist['inf']:g} != _count "
                          f"{hist['count']:g}")

    for name in args.require:
        if name not in seen:
            errors.append(f"required metric missing: {name}")

    for error in errors:
        print(f"prom_check: {error}", file=sys.stderr)
    print(f"prom_check: {len(seen)} metrics, {len(histograms)} histograms, "
          f"{len(args.require)} required, {len(errors)} errors")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
