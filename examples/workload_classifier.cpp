// Example: supervised workload identification (the paper's §4.2.1 scenario).
//
// An operator labels signatures from known-good runs of three workloads,
// trains ml::OneVsRestSvm, and then identifies which workload an unlabeled
// production machine was running from its signatures alone, reporting a
// full confusion matrix.
//
// Build & run:  ./build/examples/workload_classifier
#include <cstdio>
#include <string>
#include <vector>

#include "fmeter/fmeter.hpp"
#include "ml/multiclass.hpp"

using namespace fmeter;

// (The one-vs-rest construction lives in the library: ml::OneVsRestSvm.)

int main() {
  core::MonitoredSystem system;

  // Phase 1: collect labeled training signatures in a controlled environment.
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 80;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.4;
  const workloads::WorkloadKind kinds[] = {workloads::WorkloadKind::kScp,
                                           workloads::WorkloadKind::kKcompile,
                                           workloads::WorkloadKind::kDbench};
  std::printf("collecting labeled training signatures...\n");
  const auto corpus = core::collect_signatures(system, kinds, gen);

  vsm::TfIdfModel tfidf;
  const auto signatures = core::signatures_from(corpus, {}, &tfidf);

  // Phase 2: train the one-vs-rest committee.
  std::vector<ml::OneVsRestSvm::Example> training;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    training.push_back({signatures[i], corpus[i].label});
  }
  ml::OneVsRestSvm classifier;
  ml::SvmConfig svm_config;
  svm_config.c = 10.0;
  classifier.fit(training, svm_config);
  std::printf("trained %zu one-vs-rest SVM models\n\n",
              classifier.classes().size());

  // Phase 3: the "production machine" runs workloads we pretend not to know;
  // classify fresh signatures one by one.
  ml::ConfusionMatrix matrix(classifier.classes());
  for (const auto kind : kinds) {
    auto probe_gen = gen;
    probe_gen.signatures_per_workload = 10;
    probe_gen.seed ^= 0xfeedULL;
    const auto probes = core::collect_signatures(system, kind, probe_gen);
    for (const auto& doc : probes.documents()) {
      matrix.add(doc.label, classifier.classify(tfidf.transform(doc)));
    }
  }
  std::printf("%s\n", matrix.to_string().c_str());
  std::printf("accuracy %.1f%%   macro-F1 %.3f\n", 100.0 * matrix.accuracy(),
              matrix.macro_f1());
  return matrix.accuracy() >= 0.9 ? 0 : 1;
}
