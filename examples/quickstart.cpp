// Quickstart: the five-minute tour of the Fmeter API.
//
// 1. Boot a simulated machine with the Fmeter tracer armed.
// 2. Run two workloads, collecting a signature every monitoring interval.
// 3. Turn raw counts into tf-idf signatures.
// 4. Compare signatures with cosine similarity — same-workload signatures are
//    near-identical, cross-workload ones clearly apart.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "fmeter/fmeter.hpp"

int main() {
  using namespace fmeter;

  // A machine like the paper's testbed: ~3815 traced kernel functions.
  core::MonitoredSystem system;
  std::printf("booted: %zu core-kernel functions traced, %u cpus\n",
              system.kernel().symbols().size(), system.kernel().num_cpus());

  // Collect 40 signatures each for two workloads (paper: 250 per workload,
  // one every 10 seconds; trimmed here so the quickstart runs in seconds).
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 40;
  const workloads::WorkloadKind kinds[] = {
      workloads::WorkloadKind::kScp,
      workloads::WorkloadKind::kKcompile,
  };
  const vsm::Corpus corpus = core::collect_signatures(system, kinds, gen);
  std::printf("collected %zu signatures (%zu scp + %zu kcompile)\n",
              corpus.size(), corpus.indices_with_label("scp").size(),
              corpus.indices_with_label("kcompile").size());

  // Embed into the vector space model (tf-idf, unit L2 ball).
  vsm::TfIdfModel model;
  const auto signatures = core::signatures_from(corpus, {}, &model);
  std::printf("tf-idf vocabulary: %zu distinct kernel functions\n",
              model.vocabulary_size());

  // Same-class vs cross-class similarity.
  const auto scp = corpus.indices_with_label("scp");
  const auto kcompile = corpus.indices_with_label("kcompile");
  const double same = vsm::cosine_similarity(signatures[scp[0]],
                                             signatures[scp[1]]);
  const double cross = vsm::cosine_similarity(signatures[scp[0]],
                                              signatures[kcompile[0]]);
  std::printf("cos(scp, scp)      = %.4f\n", same);
  std::printf("cos(scp, kcompile) = %.4f\n", cross);

  // Store everything in a database — each add also feeds the inverted index
  // that serves similarity queries — and classify a fresh signature.
  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i], corpus[i].label);
  }
  std::printf("indexed: %zu signatures, %zu terms, %zu postings\n",
              db.index().size(), db.index().num_terms(),
              db.index().num_postings());
  core::SignatureGenConfig probe = gen;
  probe.signatures_per_workload = 1;
  probe.seed = 0xdeadbeef;
  const vsm::Corpus unknown =
      core::collect_signatures(system, workloads::WorkloadKind::kScp, probe);
  const auto probe_signature = model.transform(unknown[0]);
  const auto verdict = db.classify_by_syndrome(probe_signature);
  std::printf("unknown signature classified as: %s\n", verdict.c_str());

  // Similarity search: which archived signatures look most like the probe?
  const auto hits = db.search(probe_signature, 3);
  for (std::size_t rank = 0; rank < hits.size(); ++rank) {
    std::printf("  hit %zu: id=%zu label=%s cos=%.4f\n", rank + 1,
                hits[rank].id, hits[rank].label.c_str(), hits[rank].score);
  }

  return verdict == "scp" && same > cross && !hits.empty() &&
                 hits.front().label == "scp"
             ? 0
             : 1;
}
