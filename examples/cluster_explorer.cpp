// Example: unsupervised exploration of unlabeled signatures (paper §2.2,
// §4.2.2) — clustering, syndrome extraction, and the recursive
// meta-clustering the paper proposes for cache-aware task placement.
//
// An operator dumps a day of unlabeled signatures from a machine that ran a
// mix of workloads. Without any labels they can: (1) discover how many
// distinct behaviors there were, (2) extract a syndrome per behavior,
// (3) meta-cluster the syndromes to see which *classes* of behavior use the
// kernel similarly (candidates for sharing a cache domain).
//
// Build & run:  ./build/examples/cluster_explorer
#include <cstdio>
#include <map>

#include "fmeter/fmeter.hpp"

using namespace fmeter;

int main() {
  core::MonitoredSystem system;

  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 50;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.4;
  const workloads::WorkloadKind kinds[] = {
      workloads::WorkloadKind::kScp,
      workloads::WorkloadKind::kKcompile,
      workloads::WorkloadKind::kDbench,
      workloads::WorkloadKind::kApachebench,
  };
  std::printf("collecting a day of signatures (4 unlabeled behaviors)...\n\n");
  const auto corpus = core::collect_signatures(system, kinds, gen);
  const auto signatures = core::signatures_from(corpus);

  // (1) How many behaviors? Sweep K and watch inertia for the elbow.
  std::printf("K-sweep (inertia elbow suggests the behavior count):\n");
  double previous = 0.0;
  for (std::size_t k = 1; k <= 8; ++k) {
    ml::KMeansConfig config;
    config.k = k;
    config.seed = 7;
    const auto result = ml::KMeans(config).fit(signatures);
    std::printf("  K=%zu  inertia %8.3f%s\n", k, result.inertia,
                k > 1 && previous > 0.0 && result.inertia > previous * 0.7
                    ? "   <- diminishing returns"
                    : "");
    previous = result.inertia;
  }

  // (2) Cluster at K=4 and inspect composition against the hidden truth.
  ml::KMeansConfig config;
  config.k = 4;
  config.seed = 7;
  const auto clustering = ml::KMeans(config).fit(signatures);
  std::printf("\ncluster composition (hidden ground truth, for the reader):\n");
  for (std::size_t c = 0; c < 4; ++c) {
    std::map<std::string, int> histogram;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (clustering.assignments[i] == c) ++histogram[corpus[i].label];
    }
    std::printf("  cluster %zu:", c);
    for (const auto& [label, count] : histogram) {
      std::printf("  %s x%d", label.c_str(), count);
    }
    std::printf("\n");
  }
  std::vector<int> truth;
  const std::vector<std::string> names = {"scp", "kcompile", "dbench",
                                          "apachebench"};
  for (const auto& doc : corpus.documents()) {
    truth.push_back(static_cast<int>(
        std::find(names.begin(), names.end(), doc.label) - names.begin()));
  }
  const double purity = ml::cluster_purity(clustering.assignments, truth);
  std::printf("  purity vs hidden truth: %.3f\n", purity);

  // (3) Meta-clustering: which behavior classes use the kernel similarly?
  // Store per-cluster centroids as syndromes and cluster THEM into 2 groups.
  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i],
           "behavior-" + std::to_string(clustering.assignments[i]));
  }
  const auto meta = db.meta_cluster(2, 11);
  const auto syndromes = db.syndromes();
  std::printf("\nmeta-clustering of syndromes into 2 cache-affinity groups:\n");
  for (std::size_t s = 0; s < syndromes.size(); ++s) {
    // Describe each syndrome by its dominant true label.
    std::map<std::string, int> histogram;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if ("behavior-" + std::to_string(clustering.assignments[i]) ==
          syndromes[s].label) {
        ++histogram[corpus[i].label];
      }
    }
    std::string dominant;
    int best = 0;
    for (const auto& [label, count] : histogram) {
      if (count > best) {
        best = count;
        dominant = label;
      }
    }
    std::printf("  group %zu: %s (mostly %s, %zu signatures)\n", meta[s],
                syndromes[s].label.c_str(), dominant.c_str(),
                syndromes[s].support);
  }
  std::printf("\nschedulers can co-locate behaviors within a group on a "
              "shared L3 domain (paper §2.2/§6)\n");

  return purity >= 0.9 ? 0 : 1;
}
