// Example: continuous production monitoring with a rolling collector —
// the deployment mode the paper argues Fmeter's low overhead enables
// ("signature generation can be turned on at production time for long
// continuous periods of time", §1).
//
// A machine serves HTTP around the clock. We keep the collector rolling,
// classify every interval against a syndrome database, and raise an alert
// when consecutive intervals stop looking like the baseline — here the
// simulated incident is the workload silently shifting from HTTP serving to
// a disk-thrashing intruder process.
//
// Build & run:  ./build/examples/live_monitor
#include <cstdio>
#include <deque>

#include "fmeter/fmeter.hpp"

using namespace fmeter;

int main() {
  core::MonitoredSystem system;
  auto& cpu = system.kernel().cpu(0);

  // Bootstrap: labeled baseline corpus for the service and for one known
  // pathology class from the operator's archive.
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 50;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.3;
  std::printf("bootstrapping syndrome database...\n");
  auto corpus = core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, gen);
  corpus.append(core::collect_signatures(
      system, workloads::WorkloadKind::kDbench, gen));

  vsm::TfIdfModel tfidf;
  const auto signatures = core::signatures_from(corpus, {}, &tfidf);
  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i],
           corpus[i].label == "apachebench" ? "serving" : "disk-thrash");
  }

  // Live monitoring: rolling intervals, alert after 3 consecutive anomalies.
  system.select_tracer(core::TracerKind::kFmeter);
  core::SignatureCollector collector(system.debugfs());
  auto serving = workloads::make_workload(
      workloads::WorkloadKind::kApachebench, system.ops());
  auto intruder = workloads::make_workload(workloads::WorkloadKind::kDbench,
                                           system.ops());

  constexpr int kIncidentStart = 12;
  constexpr int kIntervals = 20;
  int consecutive_anomalies = 0;
  int alert_raised_at = -1;

  std::printf("\nmonitoring (incident injected at interval %d):\n",
              kIncidentStart);
  collector.begin_interval();
  for (int interval = 0; interval < kIntervals; ++interval) {
    // Production traffic; after the incident the intruder dominates.
    for (int unit = 0; unit < 8; ++unit) {
      if (interval >= kIncidentStart) {
        intruder->run_unit(cpu);
      } else {
        serving->run_unit(cpu);
      }
    }
    system.ops().background_noise(cpu, 500);

    const auto doc = collector.roll_interval("live", 10.0);
    const auto signature = tfidf.transform(doc);
    const auto verdict = db.classify_by_syndrome(signature);
    const bool anomalous = verdict != "serving";
    consecutive_anomalies = anomalous ? consecutive_anomalies + 1 : 0;

    std::printf("  interval %2d: classified as %-12s%s\n", interval,
                verdict.c_str(), anomalous ? "  [ANOMALY]" : "");
    if (consecutive_anomalies == 3 && alert_raised_at < 0) {
      alert_raised_at = interval;
      std::printf("  >>> ALERT: 3 consecutive anomalous intervals — paging "
                  "operator (diagnosis: %s)\n",
                  verdict.c_str());
    }
  }

  const bool detected = alert_raised_at >= kIncidentStart &&
                        alert_raised_at <= kIncidentStart + 4;
  std::printf("\nincident %s (alert at interval %d)\n",
              detected ? "detected promptly" : "NOT detected correctly",
              alert_raised_at);
  return detected ? 0 : 1;
}
