// Example: continuous production monitoring with a rolling collector —
// the deployment mode the paper argues Fmeter's low overhead enables
// ("signature generation can be turned on at production time for long
// continuous periods of time", §1).
//
// A machine serves HTTP around the clock. We keep the collector rolling,
// classify every interval against a syndrome database, and raise an alert
// when consecutive intervals stop looking like the baseline — here the
// simulated incident is the workload silently shifting from HTTP serving to
// a disk-thrashing intruder process.
//
// The monitor also scrapes the always-on metrics registry every few
// intervals and prints a one-line latency digest — the same numbers an
// operator's Prometheus would collect from a real deployment.
//
// Build & run:  ./build/examples/live_monitor
#include <cstdio>
#include <deque>

#include "fmeter/fmeter.hpp"
#include "obs/metrics.hpp"

using namespace fmeter;

namespace {

/// Periodic observability digest straight from the registry scrape: how
/// many classifications ran, where their latency sits, and what one
/// classification costs in probe work.
void print_metrics_digest(const core::SignatureDatabase& db) {
  db.publish_gauges();
  const auto snap = obs::MetricsRegistry::global().scrape();
  const auto* classify = snap.histogram("fmeter_db_classify_ns");
  const auto* probe = snap.histogram("fmeter_stage_shard_probe_ns");
  const auto* scored = snap.counter("fmeter_query_docs_scored_total");
  std::printf(
      "  [metrics] classify: n=%llu p50=%.1fus p99=%.1fus | probe: "
      "p50=%.1fus | docs scored: %llu\n",
      classify != nullptr ? static_cast<unsigned long long>(
                                classify->snapshot.count)
                          : 0ull,
      classify != nullptr ? classify->snapshot.quantile(0.50) / 1000.0 : 0.0,
      classify != nullptr ? classify->snapshot.quantile(0.99) / 1000.0 : 0.0,
      probe != nullptr ? probe->snapshot.quantile(0.50) / 1000.0 : 0.0,
      scored != nullptr ? static_cast<unsigned long long>(scored->value)
                        : 0ull);
}

}  // namespace

int main() {
  core::MonitoredSystem system;
  auto& cpu = system.kernel().cpu(0);

  // Bootstrap: labeled baseline corpus for the service and for one known
  // pathology class from the operator's archive.
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 50;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.3;
  std::printf("bootstrapping syndrome database...\n");
  auto corpus = core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, gen);
  corpus.append(core::collect_signatures(
      system, workloads::WorkloadKind::kDbench, gen));

  vsm::TfIdfModel tfidf;
  const auto signatures = core::signatures_from(corpus, {}, &tfidf);
  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i],
           corpus[i].label == "apachebench" ? "serving" : "disk-thrash");
  }

  // Live monitoring: rolling intervals, alert after 3 consecutive anomalies.
  system.select_tracer(core::TracerKind::kFmeter);
  core::SignatureCollector collector(system.debugfs());
  auto serving = workloads::make_workload(
      workloads::WorkloadKind::kApachebench, system.ops());
  auto intruder = workloads::make_workload(workloads::WorkloadKind::kDbench,
                                           system.ops());

  constexpr int kIncidentStart = 12;
  constexpr int kIntervals = 20;
  int consecutive_anomalies = 0;
  int alert_raised_at = -1;

  std::printf("\nmonitoring (incident injected at interval %d):\n",
              kIncidentStart);
  collector.begin_interval();
  for (int interval = 0; interval < kIntervals; ++interval) {
    // Production traffic; after the incident the intruder dominates.
    for (int unit = 0; unit < 8; ++unit) {
      if (interval >= kIncidentStart) {
        intruder->run_unit(cpu);
      } else {
        serving->run_unit(cpu);
      }
    }
    system.ops().background_noise(cpu, 500);

    const auto doc = collector.roll_interval("live", 10.0);
    const auto signature = tfidf.transform(doc);
    const auto verdict = db.classify_by_syndrome(signature);
    const bool anomalous = verdict != "serving";
    consecutive_anomalies = anomalous ? consecutive_anomalies + 1 : 0;

    std::printf("  interval %2d: classified as %-12s%s\n", interval,
                verdict.c_str(), anomalous ? "  [ANOMALY]" : "");
    if ((interval + 1) % 5 == 0) print_metrics_digest(db);
    if (consecutive_anomalies == 3 && alert_raised_at < 0) {
      alert_raised_at = interval;
      std::printf("  >>> ALERT: 3 consecutive anomalous intervals — paging "
                  "operator (diagnosis: %s)\n",
                  verdict.c_str());
    }
  }

  const bool detected = alert_raised_at >= kIncidentStart &&
                        alert_raised_at <= kIncidentStart + 4;
  std::printf("\nincident %s (alert at interval %d)\n",
              detected ? "detected promptly" : "NOT detected correctly",
              alert_raised_at);
  return detected ? 0 : 1;
}
