// Example: the always-on ingest+query process the paper argues Fmeter's
// low overhead enables ("signature generation can be turned on at
// production time for long continuous periods of time", §1).
//
// A machine serves HTTP around the clock. Every interval flows through the
// full production path: tracer counters -> SignatureCollector diff ->
// tf-idf -> LivePipeline -> LiveDatabase, the epoch-swapped live archive
// that journals each interval and re-freezes its tail in the background
// while this same loop keeps querying it. Each fresh interval is
// classified against a syndrome database for alerting AND searched against
// the growing archive for precedents — query-while-ingest, the live
// archive's whole point. The simulated incident is the workload silently
// shifting from HTTP serving to a disk-thrashing intruder process.
//
// The monitor also scrapes the always-on metrics registry every few
// intervals and prints a one-line latency digest — the same numbers an
// operator's Prometheus would collect from a real deployment.
//
// Build & run:  ./build/examples/live_monitor
#include <cstdio>
#include <string>

#include "exec/task_pool.hpp"
#include "fmeter/fmeter.hpp"
#include "io/env.hpp"
#include "obs/metrics.hpp"

using namespace fmeter;

namespace {

/// Formats one histogram quantile in microseconds, or "-" when the
/// histogram has not recorded anything yet — a first-interval scrape sees
/// count == 0, and quantile() on an empty distribution is garbage, not a
/// number an operator should ever read.
std::string quantile_us(const obs::HistogramSample* sample, double q) {
  if (sample == nullptr || sample->snapshot.count == 0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f",
                sample->snapshot.quantile(q) / 1000.0);
  return buffer;
}

/// Periodic observability digest straight from the registry scrape:
/// classification latency, probe latency, and the live archive's epoch
/// shape (published sequence, base/tail split, background re-freezes).
void print_metrics_digest(const core::SignatureDatabase& syndromes,
                          const core::LiveDatabase& archive) {
  syndromes.publish_gauges();
  archive.publish_gauges();
  const auto snap = obs::MetricsRegistry::global().scrape();
  const auto* classify = snap.histogram("fmeter_db_classify_ns");
  const auto* probe = snap.histogram("fmeter_stage_shard_probe_ns");
  const auto* refreeze = snap.histogram("fmeter_live_refreeze_ns");
  const auto* tail = snap.gauge("fmeter_live_tail_docs");
  const auto* base = snap.gauge("fmeter_live_base_docs");
  std::printf(
      "  [metrics] classify: n=%llu p50=%sus p99=%sus | probe p50=%sus | "
      "archive base=%.0f tail=%.0f refreeze p99=%sus\n",
      classify != nullptr
          ? static_cast<unsigned long long>(classify->snapshot.count)
          : 0ull,
      quantile_us(classify, 0.50).c_str(), quantile_us(classify, 0.99).c_str(),
      quantile_us(probe, 0.50).c_str(),
      base != nullptr ? base->value : 0.0,
      tail != nullptr ? tail->value : 0.0,
      quantile_us(refreeze, 0.99).c_str());
}

}  // namespace

int main() {
  core::MonitoredSystem system;
  auto& cpu = system.kernel().cpu(0);

  // Bootstrap: labeled baseline corpus for the service and for one known
  // pathology class from the operator's archive.
  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 50;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.3;
  std::printf("bootstrapping syndrome database...\n");
  auto corpus = core::collect_signatures(
      system, workloads::WorkloadKind::kApachebench, gen);
  corpus.append(core::collect_signatures(
      system, workloads::WorkloadKind::kDbench, gen));

  vsm::TfIdfModel tfidf;
  const auto signatures = core::signatures_from(corpus, {}, &tfidf);
  core::SignatureDatabase syndromes;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    syndromes.add(signatures[i],
                  corpus[i].label == "apachebench" ? "serving"
                                                   : "disk-thrash");
  }

  // The live archive every production interval lands in. In-memory here to
  // keep the example hermetic; a deployment passes io::Env::posix() and a
  // real directory — everything else is identical, including the journal
  // and the MANIFEST-committed background re-freezes.
  io::InMemoryEnv env;
  exec::TaskPool pool(2);
  core::LiveOptions live;
  live.refreeze_min_docs = 8;  // tiny corpus: let the demo actually fold
  live.refreeze_fraction = 0.5;
  live.pool = &pool;
  core::LiveDatabase archive(env, "live-archive", live);

  // Live monitoring: rolling intervals, alert after 3 consecutive
  // anomalies.
  system.select_tracer(core::TracerKind::kFmeter);
  core::SignatureCollector collector(system.debugfs());
  core::LivePipeline pipeline(collector, tfidf, archive);
  auto serving = workloads::make_workload(
      workloads::WorkloadKind::kApachebench, system.ops());
  auto intruder = workloads::make_workload(workloads::WorkloadKind::kDbench,
                                           system.ops());

  constexpr int kIncidentStart = 12;
  constexpr int kIntervals = 20;
  int consecutive_anomalies = 0;
  int alert_raised_at = -1;

  std::printf("\nmonitoring (incident injected at interval %d):\n",
              kIncidentStart);
  collector.begin_interval();
  for (int interval = 0; interval < kIntervals; ++interval) {
    // Production traffic; after the incident the intruder dominates.
    for (int unit = 0; unit < 8; ++unit) {
      if (interval >= kIncidentStart) {
        intruder->run_unit(cpu);
      } else {
        serving->run_unit(cpu);
      }
    }
    system.ops().background_noise(cpu, 500);

    // The full live path: diff counters, transform, journal, publish.
    const auto ingested = pipeline.ingest_interval(
        "interval-" + std::to_string(interval), 10.0);
    const auto verdict = syndromes.classify_by_syndrome(ingested.signature);
    const bool anomalous = verdict != "serving";
    consecutive_anomalies = anomalous ? consecutive_anomalies + 1 : 0;

    // Query-while-ingest: how many archived intervals resemble this one?
    // The snapshot pins an epoch, so a background re-freeze mid-search is
    // invisible here.
    const auto precedents =
        archive.snapshot().search(ingested.signature, 3);
    std::printf("  interval %2d: classified as %-12s archived as #%zu, "
                "nearest precedent %s%s\n",
                interval, verdict.c_str(), ingested.id,
                precedents.size() > 1 ? precedents[1].label.c_str() : "n/a",
                anomalous ? "  [ANOMALY]" : "");
    if ((interval + 1) % 5 == 0) print_metrics_digest(syndromes, archive);
    if (consecutive_anomalies == 3 && alert_raised_at < 0) {
      alert_raised_at = interval;
      std::printf("  >>> ALERT: 3 consecutive anomalous intervals — paging "
                  "operator (diagnosis: %s)\n",
                  verdict.c_str());
    }
  }

  archive.wait_for_refreeze();
  const auto stats = archive.stats();
  std::printf("\narchive: %zu intervals, base %zu + tail %zu, epoch %llu, "
              "%llu background re-freezes\n",
              stats.total_docs, stats.base_docs, stats.tail_docs,
              static_cast<unsigned long long>(stats.manifest_epoch),
              static_cast<unsigned long long>(stats.refreezes));

  const bool detected = alert_raised_at >= kIncidentStart &&
                        alert_raised_at <= kIncidentStart + 4;
  const bool archived = stats.total_docs ==
                        static_cast<std::size_t>(kIntervals);
  std::printf("incident %s (alert at interval %d)\n",
              detected ? "detected promptly" : "NOT detected correctly",
              alert_raised_at);
  return detected && archived ? 0 : 1;
}
