// Example: detecting a subtly compromised subsystem (the paper's §4.2.1
// myri10ge scenario).
//
// A fleet machine is supposed to run the blessed myri10ge 1.5.1 driver.
// An attacker (or a sloppy rollout) replaces it with the older 1.4.3 build,
// and elsewhere someone disables LRO — the "increased DDOS propensity"
// configuration the paper warns about. The driver lives in an
// UN-instrumented module, so nothing about it appears in the signatures
// directly; only the core-kernel functions it calls do. The operator's
// anomaly detector compares fresh signatures against the known-good
// syndrome and flags deviations, then uses a labeled database to name the
// specific deviation.
//
// Build & run:  ./build/examples/driver_anomaly
#include <cstdio>

#include "fmeter/fmeter.hpp"

using namespace fmeter;

int main() {
  core::MonitoredSystem system;

  core::SignatureGenConfig gen;
  gen.signatures_per_workload = 60;
  gen.units_per_interval = 8;
  gen.interval_jitter = 0.4;

  // Phase 1: baseline — the blessed driver at line rate.
  std::printf("collecting known-good baseline (myri10ge 1.5.1, LRO on)...\n");
  const auto baseline = core::collect_signatures(
      system, workloads::WorkloadKind::kNetperf151, gen);

  // Phase 2: forensic archive of previously diagnosed bad configurations.
  std::printf("collecting labeled forensic archive (1.4.3, 1.5.1-noLRO)...\n");
  const workloads::WorkloadKind bad_kinds[] = {
      workloads::WorkloadKind::kNetperf143,
      workloads::WorkloadKind::kNetperf151NoLro};
  auto corpus = baseline;
  corpus.append(core::collect_signatures(system, bad_kinds, gen));

  vsm::TfIdfModel tfidf;
  const auto signatures = core::signatures_from(corpus, {}, &tfidf);

  core::SignatureDatabase db;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    db.add(signatures[i], corpus[i].label);
  }

  // Calibrate the anomaly detector on the known-good class only: its alarm
  // threshold comes from the baseline signatures' own spread, not from any
  // knowledge of the bad configurations.
  core::AnomalyDetector detector;
  {
    std::vector<vsm::SparseVector> good;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      if (corpus[i].label == "myri10ge-1.5.1") good.push_back(signatures[i]);
    }
    detector.fit(good);
  }
  std::printf("calibrated anomaly threshold: %.4f (cosine distance)\n",
              detector.threshold());

  // Phase 3: watch three "production" machines. Machine A is healthy,
  // machine B runs the stale 1.4.3 driver, machine C disabled LRO.
  struct Machine {
    const char* name;
    workloads::WorkloadKind kind;
    const char* expected;
  };
  const Machine machines[] = {
      {"A (healthy)", workloads::WorkloadKind::kNetperf151, "myri10ge-1.5.1"},
      {"B (stale driver)", workloads::WorkloadKind::kNetperf143,
       "myri10ge-1.4.3"},
      {"C (LRO disabled)", workloads::WorkloadKind::kNetperf151NoLro,
       "myri10ge-1.5.1-nolro"},
  };

  std::printf("\n%-20s %12s %10s  %s\n", "machine", "anomaly score",
              "anomaly?", "nearest labeled syndrome");
  int mistakes = 0;
  for (const auto& machine : machines) {
    auto probe_gen = gen;
    probe_gen.signatures_per_workload = 5;
    probe_gen.seed ^= 0xabcdULL;
    const auto probes = core::collect_signatures(system, machine.kind, probe_gen);

    // Mean anomaly score of the probes; diagnosis by nearest syndrome.
    double anomaly_score = 0.0;
    std::size_t alarms = 0;
    std::string diagnosis;
    for (const auto& doc : probes.documents()) {
      const auto signature = tfidf.transform(doc);
      anomaly_score += detector.score(signature);
      alarms += detector.is_anomalous(signature);
      diagnosis = db.classify_by_syndrome(signature);
    }
    anomaly_score /= static_cast<double>(probes.size());

    const bool anomalous = alarms > probes.size() / 2;
    std::printf("%-20s %12.4f %10s  %s\n", machine.name, anomaly_score,
                anomalous ? "YES" : "no", diagnosis.c_str());
    mistakes += diagnosis != machine.expected;
    mistakes += (machine.kind != workloads::WorkloadKind::kNetperf151) !=
                anomalous;
  }

  std::printf("\nall three machines diagnosed %s\n",
              mistakes == 0 ? "correctly" : "WITH MISTAKES");
  return mistakes == 0 ? 0 : 1;
}
